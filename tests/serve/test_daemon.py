"""End-to-end daemon tests: HTTP surface, concurrency, fault isolation."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.errors import ServeError
from repro.obs.alerts import AlertRule
from repro.serve import ReproServer, ServeClient

DATASET = "gnp:n=150,avg_deg=5,seed=3"


@pytest.fixture(autouse=True)
def _isolated_caches(tmp_path, monkeypatch):
    from repro.serve import RESULT_DB_ENV
    from repro.workloads import DATA_DIR_ENV

    monkeypatch.setenv(DATA_DIR_ENV, str(tmp_path / "data"))
    monkeypatch.setenv(RESULT_DB_ENV, str(tmp_path / "results.sqlite"))


@pytest.fixture
def daemon():
    """A live daemon on an ephemeral port, with a bound client."""
    server = ReproServer(port=0)
    with server.start_in_thread() as handle:
        client = ServeClient(handle.host, handle.port)
        client.wait_until_ready()
        yield server, client


class TestHTTPSurface:
    def test_health_and_status(self, daemon):
        server, client = daemon
        assert client.health()["ok"]
        status = client.status()
        assert status["served"] == 0  # counts completed /run requests only
        assert status["session"]["requests"] == 0
        assert status["uptime_s"] >= 0

    def test_unknown_path_404(self, daemon):
        _, client = daemon
        url = f"http://{client.host}:{client.port}/nope"
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(url)
        assert err.value.code == 404

    def test_wrong_method_405(self, daemon):
        _, client = daemon
        url = f"http://{client.host}:{client.port}/health"
        request = urllib.request.Request(url, data=b"{}", method="POST")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request)
        assert err.value.code == 405

    def test_malformed_json_400(self, daemon):
        _, client = daemon
        url = f"http://{client.host}:{client.port}/run"
        request = urllib.request.Request(
            url, data=b"{not json", method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request)
        assert err.value.code == 400
        body = json.loads(err.value.read())
        assert body["ok"] is False


class TestRunRequests:
    def test_miss_then_result_cache_hit(self, daemon):
        server, client = daemon
        first = client.run("triangles", dataset=DATASET, k=4, seed=9)
        second = client.run("triangles", dataset=DATASET, k=4, seed=9)
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["rounds"] == first["rounds"]
        assert second["messages"] == first["messages"]
        status = client.status()
        assert status["session"]["executed"] == 1
        assert status["session"]["cache_hits"] == 1
        assert status["session"]["result_store"]["hits"] == 1

    def test_summary_rows_are_json_clean(self, daemon):
        _, client = daemon
        report = client.run("pagerank", dataset=DATASET, k=4, seed=1)
        assert report["algo"] == "pagerank"
        assert report["n"] == 150 and report["k"] == 4
        assert isinstance(report["summary"], list)
        json.dumps(report)  # the whole report must round-trip

    def test_poisoned_request_leaves_the_daemon_serving(self, daemon):
        _, client = daemon
        with pytest.raises(ServeError, match="AlgorithmError"):
            client.run("no-such-algo", dataset=DATASET, k=4)
        with pytest.raises(ServeError):
            client.run("pagerank", dataset="bogus-spec", k=4)
        report = client.run("pagerank", dataset=DATASET, k=4, seed=1)
        assert report["cached"] is False
        status = client.status()
        assert status["session"]["errors"] == 2
        assert status["session"]["executed"] == 1

    def test_unknown_request_field_rejected(self, daemon):
        _, client = daemon
        url = f"http://{client.host}:{client.port}/run"
        payload = json.dumps(
            {"algo": "pagerank", "dataset": DATASET, "k": 4, "bogus": 1}
        ).encode()
        request = urllib.request.Request(
            url, data=payload, method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request)
        assert err.value.code == 400

    def test_concurrent_clients(self, daemon):
        """Eight clients at once; every reply correct, one execution."""
        _, client = daemon
        client.run("pagerank", dataset=DATASET, k=4, seed=1)  # warm the key
        errors, reports = [], []
        barrier = threading.Barrier(8)

        def worker():
            try:
                barrier.wait()
                own = ServeClient(client.host, client.port)
                reports.append(
                    own.run("pagerank", dataset=DATASET, k=4, seed=1)
                )
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(reports) == 8
        assert all(r["cached"] for r in reports)
        status = client.status()
        assert status["session"]["executed"] == 1
        assert status["session"]["cache_hits"] == 8


class TestLifecycle:
    def test_shutdown_endpoint_stops_the_daemon(self):
        server = ReproServer(port=0)
        handle = server.start_in_thread()
        client = ServeClient(handle.host, handle.port)
        client.wait_until_ready()
        assert client.shutdown()["ok"]
        handle._thread.join(timeout=10.0)
        assert not handle._thread.is_alive()
        with pytest.raises(ServeError, match="no daemon"):
            client.health()

    def test_client_error_when_no_daemon(self):
        client = ServeClient(port=1)  # nothing listens on port 1
        with pytest.raises(ServeError, match="no daemon"):
            client.health()

    def test_prewarm_materializes_before_traffic(self):
        server = ReproServer(port=0, prewarm=(DATASET,))
        with server.start_in_thread() as handle:
            client = ServeClient(handle.host, handle.port)
            client.wait_until_ready()
            assert client.status()["session"]["resident_datasets"] == 1


def _wait_for(predicate, deadline=15.0, interval=0.05):
    import time

    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestAlerting:
    """The daemon's background alert loop, end to end over HTTP."""

    ERROR_RULE = {"name": "error-rate", "metric": "serve.error_rate",
                  "op": ">", "threshold": 0.5, "sustain_s": 0.0,
                  "severity": "critical"}

    @pytest.fixture
    def alert_daemon(self):
        events = []
        server = ReproServer(
            port=0, alert_rules=[AlertRule(**self.ERROR_RULE)],
            alert_interval=0.05, alert_sinks=(events.append,),
        )
        with server.start_in_thread() as handle:
            client = ServeClient(handle.host, handle.port)
            client.wait_until_ready()
            yield server, client, events

    def _metrics_text(self, client):
        url = f"http://{client.host}:{client.port}/metrics"
        with urllib.request.urlopen(url, timeout=30) as reply:
            return reply.read().decode()

    def test_error_storm_fires_then_good_traffic_resolves(self, alert_daemon):
        server, client, events = alert_daemon
        # A storm of failing requests: unknown algos are 400s that land
        # in the ring as errors, pushing the window error rate to 1.0.
        for _ in range(5):
            with pytest.raises(ServeError):
                client.run("no-such-algo", dataset=DATASET, k=4, seed=1)
        assert _wait_for(
            lambda: client.alerts()["active"] == ["error-rate"]
        ), "alert never fired under a 100% error rate"
        gauge = 'repro_alert_active{rule="error-rate",severity="critical"}'
        assert f"{gauge} 1" in self._metrics_text(client)

        # Good traffic dilutes the window below the threshold: one
        # executed run plus cached hits.
        for _ in range(6):
            report = client.run("triangles", dataset=DATASET, k=4, seed=1)
            assert report["algo"] == "triangles"
        assert _wait_for(
            lambda: client.alerts()["active"] == []
        ), "alert never resolved after the error rate recovered"
        reply = client.alerts()
        assert reply["enabled"] is True
        assert reply["resolved"] == ["error-rate"]
        (rule,) = reply["rules"]
        assert rule["fired_at"] is not None
        assert rule["resolved_at"] is not None
        assert rule["last_value"] == pytest.approx(5 / 11)
        assert f"{gauge} 0" in self._metrics_text(client)
        kinds = [e["event"] for e in events]
        assert kinds == ["fire", "resolve"]

    def test_no_rules_means_no_engine_and_no_gauges(self, daemon):
        server, client = daemon
        assert server.alerts is None  # zero alerting state on the path
        reply = client.alerts()
        assert reply["enabled"] is False
        assert reply["rules"] == [] and reply["active"] == []
        assert "repro_alert_active" not in self._metrics_text(client)

    def test_rejects_non_positive_interval(self):
        with pytest.raises(ServeError, match="alert_interval"):
            ReproServer(port=0, alert_rules=[AlertRule(**self.ERROR_RULE)],
                        alert_interval=0.0)

    def test_run_reply_carries_the_ledger(self, daemon):
        _, client = daemon
        report = client.run("pagerank", dataset=DATASET, k=4, seed=1)
        ledger = report["ledger"]
        assert ledger["ok"] is True
        assert ledger["algo"] == "pagerank"
        assert ledger["phases"] > 0
        assert ledger["violation_count"] == 0
