"""Tests for the sqlite result cache (keying, storage, bounds, sharing)."""

import pickle
import sqlite3

import numpy as np
import pytest

from repro import runtime
from repro.errors import ServeError
from repro.serve import (
    RESULT_DB_ENV,
    ResultStore,
    canonical_params,
    default_result_store,
    result_key,
)


class FakeMetrics:
    def __init__(self, rounds=3):
        self.rounds = rounds
        self.messages = 10
        self.bits = 80


def _put(store, key, **overrides):
    fields = dict(
        content_key="c" * 32, algo="pagerank", params_json="{}",
        seed=1, engine="vector", n=100, k=8,
        result={"pi": [0.1, 0.9]}, metrics=FakeMetrics(),
    )
    fields.update(overrides)
    store.put(key, **fields)


class TestCanonicalParams:
    def test_key_order_is_irrelevant(self):
        a = canonical_params({"c": 2, "eps": 0.1}, k=8)
        b = canonical_params({"eps": 0.1, "c": 2}, k=8)
        assert a == b

    def test_k_and_bandwidth_fold_into_the_surface(self):
        assert canonical_params({}, k=8) != canonical_params({}, k=16)
        assert canonical_params({}, k=8) != canonical_params({}, k=8, bandwidth=64)
        # Default (None) bandwidth leaves the surface untouched.
        assert "__bandwidth__" not in canonical_params({}, k=8)

    def test_numpy_scalars_coerce(self):
        a = canonical_params({"c": np.int64(2), "eps": np.float64(0.5)}, k=8)
        b = canonical_params({"c": 2, "eps": 0.5}, k=8)
        assert a == b

    def test_arrays_are_not_canonicalizable(self):
        with pytest.raises(TypeError, match="not canonicalizable"):
            canonical_params({"weights": np.arange(4)}, k=8)

    def test_result_key_separates_every_field(self):
        base = ("c" * 32, "pagerank", "{}", 1, "vector")
        key = result_key(*base)
        assert len(key) == 32
        for i, changed in enumerate(
            [("d" * 32, "pagerank", "{}", 1, "vector"),
             ("c" * 32, "triangles", "{}", 1, "vector"),
             ("c" * 32, "pagerank", '{"c":2}', 1, "vector"),
             ("c" * 32, "pagerank", "{}", 2, "vector"),
             ("c" * 32, "pagerank", "{}", 1, "message")]
        ):
            assert result_key(*changed) != key, f"field {i} must change the key"


class TestResultStore:
    def test_put_get_roundtrip_and_counters(self, tmp_path):
        with ResultStore(tmp_path / "r.sqlite") as store:
            key = result_key("c" * 32, "pagerank", "{}", 1, "vector")
            assert store.get(key) is None
            _put(store, key)
            result, metrics, meta = store.get(key)
            assert result == {"pi": [0.1, 0.9]}
            assert metrics.rounds == 3
            assert meta["algo"] == "pagerank" and meta["k"] == 8
            assert store.stats()["hits"] == 1
            assert store.stats()["misses"] == 1
            assert store.stats()["stores"] == 1

    def test_count_miss_false_skips_the_miss_counter(self, tmp_path):
        with ResultStore(tmp_path / "r.sqlite") as store:
            assert store.get("0" * 32, count_miss=False) is None
            assert store.misses == 0

    def test_lru_eviction_respects_max_entries(self, tmp_path):
        with ResultStore(tmp_path / "r.sqlite", max_entries=3) as store:
            keys = [result_key("c" * 32, "pagerank", "{}", seed, "vector")
                    for seed in range(5)]
            for seed, key in enumerate(keys):
                _put(store, key, seed=seed)
            assert len(store) == 3
            survivors = {row["key"] for row in store.rows()}
            assert survivors == set(keys[2:]), "oldest rows are evicted"

    def test_hit_refreshes_lru_rank(self, tmp_path):
        with ResultStore(tmp_path / "r.sqlite", max_entries=2) as store:
            keys = [result_key("c" * 32, "pagerank", "{}", seed, "vector")
                    for seed in range(3)]
            _put(store, keys[0], seed=0)
            _put(store, keys[1], seed=1)
            assert store.get(keys[0]) is not None  # 0 is now most recent
            _put(store, keys[2], seed=2)
            survivors = {row["key"] for row in store.rows()}
            assert survivors == {keys[0], keys[2]}

    def test_corrupt_payload_is_dropped_and_raised(self, tmp_path):
        path = tmp_path / "r.sqlite"
        store = ResultStore(path)
        key = result_key("c" * 32, "pagerank", "{}", 1, "vector")
        _put(store, key)
        with store._lock, store._conn:
            store._conn.execute(
                "UPDATE results SET payload = ? WHERE key = ?",
                (b"not a pickle", key),
            )
        with pytest.raises(ServeError, match="corrupt result payload"):
            store.get(key)
        assert len(store) == 0
        store.close()

    def test_two_handles_share_one_file(self, tmp_path):
        path = tmp_path / "r.sqlite"
        key = result_key("c" * 32, "pagerank", "{}", 1, "vector")
        with ResultStore(path) as writer, ResultStore(path) as reader:
            _put(writer, key)
            result, _, _ = reader.get(key)
            assert result == {"pi": [0.1, 0.9]}

    def test_clear_and_len(self, tmp_path):
        with ResultStore(tmp_path / "r.sqlite") as store:
            _put(store, "a" * 32)
            _put(store, "b" * 32)
            assert len(store) == 2
            assert store.clear() == 2
            assert len(store) == 0

    def test_bad_max_entries_rejected(self, tmp_path):
        with pytest.raises(ServeError, match="positive"):
            ResultStore(tmp_path / "r.sqlite", max_entries=0)

    def test_default_store_follows_the_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(RESULT_DB_ENV, str(tmp_path / "a.sqlite"))
        first = default_result_store()
        assert first is default_result_store()
        monkeypatch.setenv(RESULT_DB_ENV, str(tmp_path / "b.sqlite"))
        second = default_result_store()
        assert second is not first
        assert second.path.endswith("b.sqlite")


class TestTTL:
    """Per-algo-family result expiry, on a pinned clock."""

    @staticmethod
    def _pinned(store, start=1_000.0):
        state = {"now": start}
        store._clock = lambda: state["now"]
        return state

    def test_expired_row_is_a_miss_and_deleted_in_place(self, tmp_path):
        with ResultStore(tmp_path / "r.sqlite", ttl_seconds=60) as store:
            clock = self._pinned(store)
            key = result_key("c" * 32, "pagerank", "{}", 1, "vector")
            _put(store, key)
            assert store.get(key) is not None
            clock["now"] += 61
            assert store.get(key) is None
            stats = store.stats()
            assert stats["expired"] == 1 and stats["swept"] == 1
            assert stats["misses"] == 1 and stats["hits"] == 1
            assert len(store) == 0
            # A re-put after expiry restarts the row's life.
            _put(store, key)
            assert store.get(key) is not None

    def test_expiry_measured_from_created_not_last_used(self, tmp_path):
        with ResultStore(tmp_path / "r.sqlite", ttl_seconds=60) as store:
            clock = self._pinned(store)
            key = result_key("c" * 32, "pagerank", "{}", 1, "vector")
            _put(store, key)
            for _ in range(5):  # popularity must not grant immortality
                clock["now"] += 20
                store.get(key)
            clock["now"] += 20  # 120s after creation
            assert store.get(key) is None

    def test_count_miss_false_still_counts_expiry(self, tmp_path):
        with ResultStore(tmp_path / "r.sqlite", ttl_seconds=60) as store:
            clock = self._pinned(store)
            key = result_key("c" * 32, "pagerank", "{}", 1, "vector")
            _put(store, key)
            clock["now"] += 61
            assert store.get(key, count_miss=False) is None
            assert store.misses == 0
            assert store.expired == 1

    def test_per_algo_map_with_wildcard_fallback(self, tmp_path):
        ttl = {"pagerank": 60, "*": 600}
        with ResultStore(tmp_path / "r.sqlite", ttl_seconds=ttl) as store:
            clock = self._pinned(store)
            pr = result_key("c" * 32, "pagerank", "{}", 1, "vector")
            mst = result_key("c" * 32, "mst", "{}", 1, "vector")
            _put(store, pr, algo="pagerank")
            _put(store, mst, algo="mst")
            clock["now"] += 120  # past pagerank's TTL, inside mst's
            assert store.get(pr) is None
            assert store.get(mst) is not None
            clock["now"] += 600
            assert store.get(mst) is None

    def test_put_sweeps_expired_rows(self, tmp_path):
        with ResultStore(tmp_path / "r.sqlite", ttl_seconds=60) as store:
            clock = self._pinned(store)
            for seed in range(3):
                _put(store, result_key("c" * 32, "pagerank", "{}", seed,
                                       "vector"), seed=seed)
            clock["now"] += 61
            fresh = result_key("c" * 32, "pagerank", "{}", 9, "vector")
            _put(store, fresh, seed=9)
            # The sweep removed the stale rows without any get() traffic.
            assert len(store) == 1
            assert store.swept == 3
            assert store.expired == 0  # no lookup ever saw them

    def test_no_ttl_means_no_expiry(self, tmp_path):
        with ResultStore(tmp_path / "r.sqlite") as store:
            clock = self._pinned(store)
            key = result_key("c" * 32, "pagerank", "{}", 1, "vector")
            _put(store, key)
            clock["now"] += 10**9
            assert store.get(key) is not None
            assert "ttl_seconds" not in store.stats()

    def test_stats_reports_the_ttl_map(self, tmp_path):
        with ResultStore(tmp_path / "r.sqlite", ttl_seconds=30) as store:
            assert store.stats()["ttl_seconds"] == {"*": 30.0}

    @pytest.mark.parametrize("bad", [0, -5, "soon", {"pagerank": 0},
                                     {"mst": "x"}, True])
    def test_rejects_malformed_ttl(self, tmp_path, bad):
        with pytest.raises(ServeError, match="ttl_seconds"):
            ResultStore(tmp_path / "r.sqlite", ttl_seconds=bad)


class TestRunIntegration:
    """The cache under real runs: payloads must survive the roundtrip."""

    def test_cached_report_is_bit_identical(self, tmp_path):
        from repro.workloads import GraphCache

        g = GraphCache(root=tmp_path / "data").materialize(
            "gnp:n=120,avg_deg=5,seed=3"
        )
        with ResultStore(tmp_path / "r.sqlite") as store:
            first = runtime.run("pagerank", g, k=4, seed=1, result_cache=store)
            second = runtime.run("pagerank", g, k=4, seed=1, result_cache=store)
            assert not first.cached and second.cached
            assert np.array_equal(
                first.result.estimates, second.result.estimates
            )
            assert second.rounds == first.rounds
            assert second.metrics.messages == first.metrics.messages
            # The payload really came from sqlite, not memory.
            raw = sqlite3.connect(store.path).execute(
                "SELECT payload FROM results"
            ).fetchone()[0]
            result, _ = pickle.loads(raw)
            assert np.array_equal(result.estimates, first.result.estimates)
