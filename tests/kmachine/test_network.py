"""Unit tests for the link network (phase and strict modes)."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.kmachine.message import Message
from repro.kmachine.network import LinkNetwork


def boxes(k, msgs):
    out = [[] for _ in range(k)]
    for m in msgs:
        out[m.src].append(m)
    return out


class TestExchange:
    def test_delivery_to_inboxes(self):
        net = LinkNetwork(3, bandwidth=16)
        msgs = [
            Message(src=0, dst=1, kind="a", payload="x", bits=4),
            Message(src=2, dst=1, kind="a", payload="y", bits=4),
            Message(src=1, dst=0, kind="b", payload="z", bits=4),
        ]
        inboxes = net.exchange(boxes(3, msgs))
        assert [m.payload for m in inboxes[1]] == ["x", "y"]
        assert [m.payload for m in inboxes[0]] == ["z"]
        assert inboxes[2] == []

    def test_rounds_max_over_links(self):
        net = LinkNetwork(3, bandwidth=8)
        msgs = [Message(src=0, dst=1, kind="a", bits=20), Message(src=0, dst=2, kind="a", bits=7)]
        net.exchange(boxes(3, msgs))
        assert net.rounds == 3  # ceil(20/8)

    def test_parallel_links_dont_add(self):
        # Loads on distinct links are delivered in parallel.
        net = LinkNetwork(4, bandwidth=8)
        msgs = [Message(src=i, dst=(i + 1) % 4, kind="a", bits=8) for i in range(4)]
        net.exchange(boxes(4, msgs))
        assert net.rounds == 1

    def test_same_link_accumulates(self):
        net = LinkNetwork(2, bandwidth=8)
        msgs = [Message(src=0, dst=1, kind="a", bits=5) for _ in range(5)]
        net.exchange(boxes(2, msgs))
        assert net.rounds == 4  # ceil(25/8)

    def test_local_message_free_and_delivered(self):
        net = LinkNetwork(2, bandwidth=8)
        msgs = [Message(src=0, dst=0, kind="a", payload=1, bits=999)]
        inboxes = net.exchange(boxes(2, msgs))
        assert net.rounds == 0
        assert inboxes[0][0].payload == 1
        assert net.metrics.local_messages == 1

    def test_multiplicity_counts_messages(self):
        net = LinkNetwork(2, bandwidth=8)
        msgs = [Message(src=0, dst=1, kind="a", bits=16, multiplicity=4)]
        net.exchange(boxes(2, msgs))
        assert net.metrics.messages == 4
        assert net.metrics.bits == 16

    def test_wrong_src_rejected(self):
        net = LinkNetwork(2, bandwidth=8)
        out = [[Message(src=1, dst=0, kind="a")], []]
        with pytest.raises(ModelError, match="src"):
            net.exchange(out)

    def test_out_of_range_dst_rejected(self):
        net = LinkNetwork(2, bandwidth=8)
        out = [[Message(src=0, dst=5, kind="a")], []]
        with pytest.raises(ModelError, match="destination"):
            net.exchange(out)

    def test_wrong_outbox_count_rejected(self):
        net = LinkNetwork(3, bandwidth=8)
        with pytest.raises(ModelError, match="outbox"):
            net.exchange([[], []])

    def test_k_must_be_at_least_two(self):
        with pytest.raises(ModelError):
            LinkNetwork(1, bandwidth=8)

    def test_reset_metrics(self):
        net = LinkNetwork(2, bandwidth=8)
        net.exchange(boxes(2, [Message(src=0, dst=1, kind="a", bits=8)]))
        assert net.rounds == 1
        net.reset_metrics()
        assert net.rounds == 0 and net.metrics.messages == 0


class TestStrictMode:
    def test_agrees_with_phase_mode_for_small_messages(self):
        rng = np.random.default_rng(0)
        for trial in range(20):
            k = int(rng.integers(2, 6))
            msgs = []
            for _ in range(int(rng.integers(0, 30))):
                i, j = rng.integers(0, k, size=2)
                if i == j:
                    continue
                msgs.append(Message(src=int(i), dst=int(j), kind="a", bits=1))
            phase = LinkNetwork(k, bandwidth=4, mode="phase")
            strict = LinkNetwork(k, bandwidth=4, mode="strict")
            phase.exchange(boxes(k, msgs))
            strict.exchange(boxes(k, msgs))
            # With unit-size messages packing is perfect: identical rounds.
            assert phase.rounds == strict.rounds

    def test_strict_counts_fragmentation_without_packing(self):
        # Two 5-bit messages, B=8: phase mode packs (ceil(10/8)=2 rounds);
        # strict without packing charges one round each = 2 as well, but
        # three 3-bit messages differ: phase ceil(9/8)=2, strict-no-pack 3.
        msgs = [Message(src=0, dst=1, kind="a", bits=3) for _ in range(3)]
        phase = LinkNetwork(2, bandwidth=8, mode="phase")
        nopack = LinkNetwork(2, bandwidth=8, mode="strict", packing=False)
        phase.exchange(boxes(2, msgs))
        nopack.exchange(boxes(2, msgs))
        assert phase.rounds == 2
        assert nopack.rounds == 3

    def test_strict_packing_spans_rounds(self):
        # One 20-bit message over an 8-bit link: 3 rounds in both modes.
        msgs = [Message(src=0, dst=1, kind="a", bits=20)]
        strict = LinkNetwork(2, bandwidth=8, mode="strict")
        strict.exchange(boxes(2, msgs))
        assert strict.rounds == 3

    def test_strict_never_below_phase(self):
        rng = np.random.default_rng(1)
        for trial in range(20):
            k = 3
            msgs = [
                Message(src=0, dst=1, kind="a", bits=int(rng.integers(1, 20)))
                for _ in range(int(rng.integers(1, 10)))
            ]
            phase = LinkNetwork(k, bandwidth=7, mode="phase")
            strict = LinkNetwork(k, bandwidth=7, mode="strict")
            phase.exchange(boxes(k, list(msgs)))
            strict.exchange(boxes(k, list(msgs)))
            assert strict.rounds >= phase.rounds

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            LinkNetwork(2, bandwidth=8, mode="weird")


class TestAccountPhase:
    def test_aggregate_accounting(self):
        net = LinkNetwork(3, bandwidth=10)
        bits = np.zeros((3, 3), dtype=np.int64)
        msgs = np.zeros((3, 3), dtype=np.int64)
        bits[0, 1] = 35
        msgs[0, 1] = 7
        rounds = net.account_phase(bits, msgs, label="agg")
        assert rounds == 4
        assert net.metrics.messages == 7
        assert net.metrics.phase_log[-1].label == "agg"
