"""Unit tests for logical wire-size rules."""

import numpy as np
import pytest

from repro.kmachine import encoding


class TestScalarSizes:
    def test_vertex_id_bits_powers_of_two(self):
        assert encoding.vertex_id_bits(2) == 1
        assert encoding.vertex_id_bits(1024) == 10
        assert encoding.vertex_id_bits(1025) == 11

    def test_vertex_id_bits_one_value(self):
        # Naming "one of one" still occupies a slot.
        assert encoding.vertex_id_bits(1) == 1

    def test_machine_id_bits(self):
        assert encoding.machine_id_bits(16) == 4
        assert encoding.machine_id_bits(17) == 5

    def test_count_bits(self):
        assert encoding.count_bits(0) == 1
        assert encoding.count_bits(1) == 1
        assert encoding.count_bits(2) == 2
        assert encoding.count_bits(255) == 8
        assert encoding.count_bits(256) == 9

    def test_edge_bits_is_two_ids(self):
        assert encoding.edge_bits(1000) == 2 * encoding.vertex_id_bits(1000)

    def test_message_composites(self):
        n = 500
        assert encoding.token_count_message_bits(n, 7) == encoding.vertex_id_bits(n) + 3
        assert encoding.heavy_count_message_bits(n, 7) == encoding.vertex_id_bits(n) + 3
        assert encoding.edge_message_bits(n) == encoding.edge_bits(n)
        assert encoding.value_message_bits(n) == encoding.vertex_id_bits(n) + encoding.FLOAT_BITS

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            encoding.vertex_id_bits(0)
        with pytest.raises(ValueError):
            encoding.count_bits(-1)


class TestCountBitsArray:
    def test_matches_scalar(self):
        counts = np.array([0, 1, 2, 3, 4, 7, 8, 255, 256, 1023, 1024])
        vec = encoding.count_bits_array(counts)
        scalars = [encoding.count_bits(int(c)) for c in counts]
        assert vec.tolist() == scalars

    def test_empty(self):
        assert encoding.count_bits_array(np.array([], dtype=np.int64)).size == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            encoding.count_bits_array(np.array([1, -1]))
