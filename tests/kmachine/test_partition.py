"""Unit tests for RVP / REP partitions and the REP→RVP conversion."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.kmachine.network import LinkNetwork
from repro.kmachine.partition import (
    EdgePartition,
    VertexPartition,
    hash_vertex_partition,
    random_edge_partition,
    random_vertex_partition,
    rep_to_rvp,
)
import repro


class TestVertexPartition:
    def test_random_partition_covers_all_vertices(self):
        p = random_vertex_partition(100, 5, seed=0)
        assert p.n == 100 and p.k == 5
        assert sum(p.machine_vertices(i).size for i in range(5)) == 100

    def test_machine_vertices_disjoint_and_sorted(self):
        p = random_vertex_partition(50, 4, seed=1)
        seen = np.concatenate([p.machine_vertices(i) for i in range(4)])
        assert np.unique(seen).size == 50
        for i in range(4):
            mv = p.machine_vertices(i)
            assert np.all(np.diff(mv) > 0)

    def test_vertices_by_machine_matches_machine_vertices(self):
        p = random_vertex_partition(80, 6, seed=2)
        parts = p.vertices_by_machine()
        for i in range(6):
            assert np.array_equal(parts[i], p.machine_vertices(i))

    def test_counts_sum_to_n(self):
        p = random_vertex_partition(123, 7, seed=3)
        assert p.counts().sum() == 123

    def test_rvp_is_balanced_whp(self):
        # Θ̃(n/k) per machine: with n=2000, k=10 the max load should be
        # well within the log-slack bound.
        p = random_vertex_partition(2000, 10, seed=4)
        assert p.is_balanced()
        assert p.balance_ratio() < 2.0

    def test_deterministic_given_seed(self):
        a = random_vertex_partition(100, 5, seed=9)
        b = random_vertex_partition(100, 5, seed=9)
        assert np.array_equal(a.home, b.home)

    def test_hash_partition_deterministic(self):
        a = hash_vertex_partition(100, 5, salt=1)
        b = hash_vertex_partition(100, 5, salt=1)
        assert np.array_equal(a.home, b.home)
        c = hash_vertex_partition(100, 5, salt=2)
        assert not np.array_equal(a.home, c.home)

    def test_hash_partition_roughly_balanced(self):
        p = hash_vertex_partition(5000, 8, salt=0)
        counts = p.counts()
        assert counts.min() > 0.6 * 5000 / 8
        assert counts.max() < 1.4 * 5000 / 8

    def test_rejects_out_of_range_home(self):
        with pytest.raises(PartitionError):
            VertexPartition(home=np.array([0, 5]), k=3)

    def test_rejects_bad_machine_query(self):
        p = random_vertex_partition(10, 3, seed=0)
        with pytest.raises(PartitionError):
            p.machine_vertices(3)

    def test_rejects_2d_home(self):
        with pytest.raises(PartitionError):
            VertexPartition(home=np.zeros((2, 2), dtype=np.int64), k=2)


class TestEdgePartition:
    def test_random_edge_partition(self):
        p = random_edge_partition(40, 4, seed=0)
        assert p.m == 40
        assert p.counts().sum() == 40

    def test_machine_edges(self):
        p = EdgePartition(home=np.array([0, 1, 0, 2]), k=3)
        assert p.machine_edges(0).tolist() == [0, 2]
        assert p.machine_edges(1).tolist() == [1]

    def test_zero_edges_allowed(self):
        p = random_edge_partition(0, 3, seed=0)
        assert p.m == 0

    def test_rejects_negative_m(self):
        with pytest.raises(PartitionError):
            random_edge_partition(-1, 3)


class TestRepToRvp:
    def test_conversion_produces_valid_partition(self, small_gnp):
        g = small_gnp
        net = LinkNetwork(4, bandwidth=64)
        ep = random_edge_partition(g.m, 4, seed=1)
        vp, metrics = rep_to_rvp(g.edges, g.n, ep, net, seed=2)
        assert vp.n == g.n and vp.k == 4
        assert metrics.rounds >= 1

    def test_conversion_message_volume_is_2m_minus_local(self, small_gnp):
        g = small_gnp
        net = LinkNetwork(4, bandwidth=64)
        ep = random_edge_partition(g.m, 4, seed=1)
        _, metrics = rep_to_rvp(g.edges, g.n, ep, net, seed=2)
        assert metrics.messages + metrics.local_messages == 2 * g.m

    def test_conversion_rounds_scale_inverse_k_squared(self):
        # Doubling k should cut conversion rounds by roughly 4x.
        g = repro.gnp_random_graph(400, 0.2, seed=5)
        rounds = {}
        for k in (4, 8, 16):
            net = LinkNetwork(k, bandwidth=32)
            ep = random_edge_partition(g.m, k, seed=1)
            _, metrics = rep_to_rvp(g.edges, g.n, ep, net, seed=2)
            rounds[k] = metrics.rounds
        assert rounds[4] > rounds[8] > rounds[16]
        assert rounds[4] / rounds[16] > 6  # ideal 16, allow slack

    def test_respects_supplied_target_partition(self, small_gnp):
        g = small_gnp
        net = LinkNetwork(4, bandwidth=64)
        ep = random_edge_partition(g.m, 4, seed=1)
        target = random_vertex_partition(g.n, 4, seed=7)
        vp, _ = rep_to_rvp(g.edges, g.n, ep, net, vertex_partition=target)
        assert vp is target

    def test_rejects_mismatched_k(self, small_gnp):
        g = small_gnp
        net = LinkNetwork(4, bandwidth=64)
        ep = random_edge_partition(g.m, 4, seed=1)
        target = random_vertex_partition(g.n, 5, seed=7)
        with pytest.raises(PartitionError):
            rep_to_rvp(g.edges, g.n, ep, net, vertex_partition=target)

    def test_rejects_wrong_edge_count(self, small_gnp):
        g = small_gnp
        net = LinkNetwork(4, bandwidth=64)
        ep = random_edge_partition(g.m + 1, 4, seed=1)
        with pytest.raises(PartitionError):
            rep_to_rvp(g.edges, g.n, ep, net)
