"""Unit tests for routing strategies and the Lemma-13 envelope."""

import numpy as np

from repro.kmachine.message import Message
from repro.kmachine.network import LinkNetwork
from repro.kmachine.routing import direct_exchange, lemma13_round_bound, valiant_exchange


def random_workload(k, x_per_machine, bits, rng):
    """Each machine sends x messages to i.u.r. destinations."""
    out = [[] for _ in range(k)]
    for i in range(k):
        for t in range(x_per_machine):
            j = int(rng.integers(0, k))
            out[i].append(Message(src=i, dst=j, kind="w", payload=t, bits=bits))
    return out


class TestDirectExchange:
    def test_delivers_everything(self):
        rng = np.random.default_rng(0)
        k = 6
        net = LinkNetwork(k, bandwidth=16)
        out = random_workload(k, 20, 4, rng)
        inboxes = direct_exchange(net, out)
        total = sum(len(b) for b in inboxes)
        assert total == sum(len(b) for b in out)

    def test_lemma13_envelope_holds_for_random_destinations(self):
        # Measured rounds of a random-destination workload stay below the
        # Lemma-13 O((x log x)/k) envelope.
        rng = np.random.default_rng(1)
        k, x, bits, B = 8, 400, 8, 32
        net = LinkNetwork(k, bandwidth=B)
        out = random_workload(k, x, bits, rng)
        direct_exchange(net, out)
        assert net.rounds <= max(1.0, 4 * lemma13_round_bound(x, k, bits, B))

    def test_adversarial_destinations_blow_up(self):
        # All messages to one machine: rounds ~ x·bits/B per link, much
        # worse than the random-destination case with the same volume.
        k, x, bits, B = 8, 400, 8, 32
        net_bad = LinkNetwork(k, bandwidth=B)
        out = [[] for _ in range(k)]
        for i in range(1, k):
            for t in range(x):
                out[i].append(Message(src=i, dst=0, kind="w", bits=bits))
        direct_exchange(net_bad, out)
        rng = np.random.default_rng(2)
        net_rand = LinkNetwork(k, bandwidth=B)
        direct_exchange(net_rand, random_workload(k, x, bits, rng))
        assert net_bad.rounds > 3 * net_rand.rounds


class TestValiantExchange:
    def test_delivers_to_final_destinations(self):
        rng = np.random.default_rng(3)
        k = 5
        net = LinkNetwork(k, bandwidth=64)
        out = [[] for _ in range(k)]
        expected = {j: 0 for j in range(k)}
        for i in range(k):
            for t in range(10):
                j = (i + 1 + t) % k
                out[i].append(Message(src=i, dst=j, kind="w", payload=(i, t), bits=4))
                expected[j] += 1
        inboxes = valiant_exchange(net, out, rng=rng)
        for j in range(k):
            assert len(inboxes[j]) == expected[j]

    def test_preserves_payload_and_kind(self):
        rng = np.random.default_rng(4)
        net = LinkNetwork(3, bandwidth=64)
        out = [[Message(src=0, dst=2, kind="tag", payload="data", bits=4)], [], []]
        inboxes = valiant_exchange(net, out, rng=rng)
        (msg,) = inboxes[2]
        assert msg.kind == "tag" and msg.payload == "data"

    def test_costs_two_phases(self):
        rng = np.random.default_rng(5)
        net = LinkNetwork(3, bandwidth=64)
        out = [[Message(src=0, dst=2, kind="w", bits=4)], [], []]
        valiant_exchange(net, out, rng=rng)
        assert net.metrics.phases == 2

    def test_balances_adversarial_single_sink(self):
        # With all traffic aimed at one machine, Valiant's first hop
        # spreads the *send* load; receive load at the sink still binds,
        # but per-source-link load drops to ~x/k.
        k, x, bits, B = 8, 200, 8, 8
        rng = np.random.default_rng(6)
        out = [[] for _ in range(k)]
        for t in range(x):
            out[1].append(Message(src=1, dst=0, kind="w", bits=bits))
        net = LinkNetwork(k, bandwidth=B)
        valiant_exchange(net, out, rng=rng)
        direct = LinkNetwork(k, bandwidth=B)
        direct_exchange(direct, [list(b) for b in out])
        # Direct: the single (1, 0) link carries everything.
        assert direct.rounds == x * bits // B
        # Valiant: hop 1 spreads over k links; hop 2 converges on the sink
        # but from k different sources.
        assert net.rounds < direct.rounds


class TestLemma13Bound:
    def test_zero_messages(self):
        assert lemma13_round_bound(0, 8, 8, 32) == 0.0

    def test_monotone_in_x(self):
        values = [lemma13_round_bound(x, 8, 8, 32) for x in (10, 100, 1000)]
        assert values[0] < values[1] < values[2]

    def test_inverse_in_k(self):
        assert lemma13_round_bound(100, 16, 8, 32) < lemma13_round_bound(100, 4, 8, 32)
