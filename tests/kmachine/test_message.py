"""Unit tests for the Message envelope."""

import pytest

from repro.kmachine.message import Message


class TestMessageConstruction:
    def test_basic_fields(self):
        m = Message(src=0, dst=1, kind="x", payload=42, bits=8)
        assert m.src == 0 and m.dst == 1 and m.kind == "x"
        assert m.payload == 42 and m.bits == 8 and m.multiplicity == 1

    def test_local_flag(self):
        assert Message(src=2, dst=2, kind="x").is_local
        assert not Message(src=2, dst=3, kind="x").is_local

    def test_default_bits_positive(self):
        assert Message(src=0, dst=1, kind="x").bits == 1

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError, match="positive"):
            Message(src=0, dst=1, kind="x", bits=0)

    def test_rejects_negative_bits(self):
        with pytest.raises(ValueError):
            Message(src=0, dst=1, kind="x", bits=-5)

    def test_rejects_negative_indices(self):
        with pytest.raises(ValueError):
            Message(src=-1, dst=0, kind="x")
        with pytest.raises(ValueError):
            Message(src=0, dst=-2, kind="x")

    def test_rejects_nonpositive_multiplicity(self):
        with pytest.raises(ValueError, match="multiplicity"):
            Message(src=0, dst=1, kind="x", multiplicity=0)

    def test_batch_envelope(self):
        m = Message(src=0, dst=1, kind="batch", bits=100, multiplicity=10)
        assert m.multiplicity == 10
        assert m.bits == 100
