"""Tests for the multiprocessing shard-worker subsystem.

Covers the three layers of :mod:`repro.kmachine.parallel`:

* :class:`SharedGraphStore` / :class:`SharedGraphView` — publish,
  zero-copy attach, detach, unlink, and idempotent close;
* :class:`ProcessEngine` — pool lifecycle, machine→worker pinning,
  kernel scheduling (results in machine order, RNG streams advanced
  worker-side exactly as the inline engines advance them), error
  propagation, and shared-segment cleanup when a worker hard-crashes;
* engine selection — ``Cluster(engine="process", workers=...)``,
  ``make_engine`` workers validation.
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory

import numpy as np
import pytest

import repro
from repro.errors import ModelError
from repro.kmachine.cluster import Cluster
from repro.kmachine.distgraph import DistributedGraph
from repro.kmachine.engine import make_engine
from repro.kmachine.network import LinkNetwork
from repro.kmachine.parallel import ProcessEngine, SharedGraphStore
from repro.kmachine.partition import random_vertex_partition

K = 4


@pytest.fixture
def distgraph():
    g = repro.gnp_random_graph(60, 0.15, seed=3)
    return DistributedGraph(g, random_vertex_partition(60, K, seed=7))


def _cluster(k=K, n=60, seed=11, workers=2) -> Cluster:
    return Cluster(k=k, n=n, seed=seed, engine="process", workers=workers)


# -- module-level kernels (workers resolve them by reference) -----------
def _sum_local_degrees(ctx, machine, rng, payload):
    shardverts = ctx.parts[machine]
    deg = ctx.graph.indptr[shardverts + 1] - ctx.graph.indptr[shardverts]
    return int(deg.sum()) + payload


def _draw(ctx, machine, rng, payload):
    return float(rng.random())


def _crash_one(ctx, machine, rng, payload):
    if machine == payload:
        os._exit(9)
    return machine


def _raise_one(ctx, machine, rng, payload):
    if machine == payload:
        raise ValueError("kernel exploded")
    return machine


def _pid(ctx, machine, rng, payload):
    return os.getpid()


class TestSharedGraphStore:
    def test_view_exposes_distgraph_surface(self, distgraph):
        store = SharedGraphStore(distgraph)
        try:
            view = store.view()
            g = distgraph.graph
            assert view.k == distgraph.k and view.n == distgraph.n
            assert np.array_equal(view.graph.indptr, g.indptr)
            assert np.array_equal(view.graph.indices, g.indices)
            assert np.array_equal(view.home, distgraph.home)
            assert np.array_equal(view.nbr_home, distgraph.nbr_home)
            assert len(view.parts) == K
            for mine, theirs in zip(view.parts, distgraph.parts):
                assert np.array_equal(mine, theirs)
            for v in (0, 7, 30):
                for j in range(K):
                    assert np.array_equal(
                        view.local_neighbors(v, j), distgraph.local_neighbors(v, j)
                    )
            view.detach()
        finally:
            store.close()

    def test_views_are_zero_copy(self, distgraph):
        store = SharedGraphStore(distgraph)
        try:
            view = store.view()
            # the view's arrays live in the shared segment, not the heap
            assert view.graph.indptr.base is not None
            seg = shared_memory.SharedMemory(name=store.key)
            seg.close()
            view.detach()
        finally:
            store.close()

    def test_close_unlinks_segment(self, distgraph):
        store = SharedGraphStore(distgraph)
        name = store.key
        store.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_close_is_idempotent_and_invalidates_meta(self, distgraph):
        store = SharedGraphStore(distgraph)
        store.close()
        store.close()
        with pytest.raises(ModelError):
            store.meta()


class TestProcessEngineScheduling:
    def test_lazy_pool_and_results_in_machine_order(self, distgraph):
        with _cluster() as cluster:
            engine = cluster.engine
            assert isinstance(engine, ProcessEngine)
            assert not engine.running  # no map yet -> no processes
            results = cluster.map_machines(
                _sum_local_degrees, distgraph, [100 * i for i in range(K)]
            )
            assert engine.running
            expected = [
                100 * i + int(np.diff(distgraph.graph.indptr)[distgraph.parts[i]].sum())
                for i in range(K)
            ]
            assert results == expected

    def test_kernels_run_in_distinct_worker_processes(self, distgraph):
        if (os.cpu_count() or 1) < 1:  # pragma: no cover
            pytest.skip("no cpu info")
        with _cluster(workers=2) as cluster:
            pids = cluster.map_machines(_pid, distgraph, [None] * K)
            assert os.getpid() not in pids  # never inline
            # machine i is pinned to worker i % 2
            assert pids[0] == pids[2] and pids[1] == pids[3]
            assert len(set(pids)) == 2

    def test_rng_streams_match_inline_engines(self, distgraph):
        with _cluster(seed=5) as proc:
            inline = Cluster(k=K, n=60, seed=5, engine="vector")
            a = [proc.map_machines(_draw, distgraph, [None] * K) for _ in range(3)]
            b = [inline.map_machines(_draw, distgraph, [None] * K) for _ in range(3)]
            assert a == b
            # worker-held generators advanced exactly like the inline ones
            pulled = proc.engine.pull_machine_rngs()
            for i in range(K):
                assert (
                    pulled[i].random() == inline.machine_rngs[i].random()
                )

    def test_parent_rng_draws_rejected_after_shipping(self, distgraph):
        # Once streams ship to the workers, the parent copies are stale;
        # drawing from them would silently diverge from the inline
        # engines, so the slots are replaced with raising sentinels.
        with _cluster() as cluster:
            cluster.machine_rngs[0].random()  # fine before the first map
            cluster.map_machines(_draw, distgraph, [None] * K)
            with pytest.raises(ModelError, match="worker"):
                cluster.machine_rngs[0].random()
            with pytest.raises(ModelError, match="map_machines"):
                cluster.machine_rngs[K - 1].integers(0, 2)
            # shared randomness is not delegated and keeps working
            cluster.shared_rng.random()

    def test_kernel_exception_propagates_and_poisons_pool(self, distgraph):
        with _cluster() as cluster:
            with pytest.raises(ModelError, match="kernel exploded"):
                cluster.map_machines(_raise_one, distgraph, [2] * K)
            # Other machines' streams already advanced past where the
            # inline serial loop would have stopped, so the pool cannot
            # reproduce inline draws anymore: it must not accept retries.
            assert not cluster.engine.running
            with pytest.raises(ModelError, match="closed"):
                cluster.map_machines(_draw, distgraph, [None] * K)

    def test_payload_count_validated(self, distgraph):
        with _cluster() as cluster:
            with pytest.raises(ModelError, match="payload"):
                cluster.map_machines(_draw, distgraph, [None] * (K + 1))


class TestStoreEviction:
    def test_store_cache_is_bounded_lru(self):
        from repro.kmachine.parallel import engine as pengine

        g = repro.gnp_random_graph(40, 0.2, seed=1)
        distgraphs = [
            DistributedGraph(g, random_vertex_partition(g.n, K, seed=s))
            for s in range(pengine.MAX_STORES + 2)
        ]
        with _cluster(n=g.n) as cluster:
            keys = []
            for dg in distgraphs:
                cluster.map_machines(_sum_local_degrees, dg, [0] * K)
                keys.append(list(cluster.engine._stores.values())[-1].key)
            assert len(cluster.engine._stores) == pengine.MAX_STORES
            # the two oldest segments were unlinked
            for key in keys[:2]:
                with pytest.raises(FileNotFoundError):
                    shared_memory.SharedMemory(name=key)
            # evicted distgraphs republish (and still compute correctly)
            sums = cluster.map_machines(_sum_local_degrees, distgraphs[0], [0] * K)
            assert sum(sums) == int(g.indices.size)


class TestWorkerCrashCleanup:
    def test_crash_shuts_pool_and_unlinks_segments(self, distgraph):
        cluster = _cluster()
        engine = cluster.engine
        # healthy superstep first, so the store is published
        cluster.map_machines(_sum_local_degrees, distgraph, [0] * K)
        segment = list(engine._stores.values())[0].key
        with pytest.raises(ModelError, match="died"):
            cluster.map_machines(_crash_one, distgraph, [1] * K)
        assert not engine.running
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=segment)
        cluster.close()  # idempotent after crash

    def test_closed_engine_rejects_new_work(self, distgraph):
        cluster = _cluster()
        cluster.map_machines(_sum_local_degrees, distgraph, [0] * K)
        cluster.close()
        with pytest.raises(ModelError, match="closed"):
            cluster.map_machines(_sum_local_degrees, distgraph, [0] * K)


class TestEngineSelection:
    def test_cluster_process_engine_and_worker_cap(self):
        c = Cluster(k=3, n=50, seed=1, engine="process", workers=16)
        assert c.engine.name == "process"
        assert c.engine.workers == 3  # capped at k
        c.close()

    def test_workers_rejected_for_inline_engines(self):
        net = LinkNetwork(k=3, bandwidth=8)
        with pytest.raises(ModelError, match="workers"):
            make_engine("vector", net, workers=2)
        with pytest.raises(ModelError, match="workers"):
            Cluster(k=3, n=50, engine="message", workers=2)

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ModelError, match="workers"):
            Cluster(k=3, n=50, engine="process", workers=0)

    def test_exchange_layer_is_vector_inherited(self):
        # the process backend's exchange path is VectorEngine's, verbatim
        from repro.kmachine.engine import VectorEngine

        assert issubclass(ProcessEngine, VectorEngine)
        assert ProcessEngine.exchange_batches is VectorEngine.exchange_batches


class TestAttachCrossProcess:
    def test_worker_attachment_reads_identical_arrays(self, distgraph):
        """A view attached in a real worker sees the published arrays."""
        with _cluster() as cluster:
            sums = cluster.map_machines(_sum_local_degrees, distgraph, [0] * K)
            assert sum(sums) == int(distgraph.graph.indices.size)
