"""Tests for the multiprocessing shard-worker subsystem.

Covers the layers of :mod:`repro.kmachine.parallel`:

* :class:`SharedGraphStore` / :class:`SharedGraphView` — publish,
  zero-copy attach, detach, unlink, and idempotent close;
* :mod:`~repro.kmachine.parallel.shipping` — shared-memory shipment of
  payload/result structures with the pipe fallback for small phases;
* :mod:`~repro.kmachine.parallel.pool` — warm pools reused across
  engines (and across ``runtime.run`` calls), exclusivity while held,
  idle-pool trimming, and explicit shutdown;
* :class:`ProcessEngine` — pool lifecycle, machine→worker pinning,
  kernel scheduling (results in machine order, RNG streams advanced
  worker-side exactly as the inline engines advance them), error
  propagation, and shared-segment cleanup when a worker hard-crashes;
* :class:`Cluster` lifecycle — idempotent close and the GC finalizer
  that keeps leaked clusters from stranding held pools;
* engine selection — ``Cluster(engine="process", workers=...)``,
  ``make_engine`` workers validation.
"""

from __future__ import annotations

import gc
import os
from multiprocessing import shared_memory

import numpy as np
import pytest

import repro
from repro.errors import ModelError
from repro.kmachine.cluster import Cluster
from repro.kmachine.distgraph import DistributedGraph
from repro.kmachine.engine import make_engine
from repro.kmachine.network import LinkNetwork
from repro.kmachine.parallel import (
    ProcessEngine,
    SharedGraphStore,
    active_pools,
    shutdown_worker_pools,
)
from repro.kmachine.parallel import pool as ppool
from repro.kmachine.parallel import shipping
from repro.kmachine.partition import random_vertex_partition

K = 4


@pytest.fixture
def distgraph():
    g = repro.gnp_random_graph(60, 0.15, seed=3)
    return DistributedGraph(g, random_vertex_partition(60, K, seed=7))


def _cluster(k=K, n=60, seed=11, workers=2) -> Cluster:
    return Cluster(k=k, n=n, seed=seed, engine="process", workers=workers)


# -- module-level kernels (workers resolve them by reference) -----------
def _sum_local_degrees(ctx, machine, rng, payload):
    shardverts = ctx.parts[machine]
    deg = ctx.graph.indptr[shardverts + 1] - ctx.graph.indptr[shardverts]
    return int(deg.sum()) + payload


def _draw(ctx, machine, rng, payload):
    return float(rng.random())


def _crash_one(ctx, machine, rng, payload):
    if machine == payload:
        os._exit(9)
    return machine


def _raise_one(ctx, machine, rng, payload):
    if machine == payload:
        raise ValueError("kernel exploded")
    return machine


def _pid(ctx, machine, rng, payload):
    return os.getpid()


def _echo_scaled(ctx, machine, rng, payload):
    # large-array kernel: exercises shared-memory shipment both ways
    return {"doubled": payload * 2, "tag": machine, "empty": payload[:0]}


def _crash_or_big(ctx, machine, rng, payload):
    # machine 0 hard-crashes while the others reply with shm-sized arrays
    if machine == 0:
        os._exit(13)
    return np.arange(50_000, dtype=np.int64)


class TestSharedGraphStore:
    def test_view_exposes_distgraph_surface(self, distgraph):
        store = SharedGraphStore(distgraph)
        try:
            view = store.view()
            g = distgraph.graph
            assert view.k == distgraph.k and view.n == distgraph.n
            assert np.array_equal(view.graph.indptr, g.indptr)
            assert np.array_equal(view.graph.indices, g.indices)
            assert np.array_equal(view.home, distgraph.home)
            assert np.array_equal(view.nbr_home, distgraph.nbr_home)
            assert len(view.parts) == K
            for mine, theirs in zip(view.parts, distgraph.parts):
                assert np.array_equal(mine, theirs)
            for v in (0, 7, 30):
                for j in range(K):
                    assert np.array_equal(
                        view.local_neighbors(v, j), distgraph.local_neighbors(v, j)
                    )
            view.detach()
        finally:
            store.close()

    def test_views_are_zero_copy(self, distgraph):
        store = SharedGraphStore(distgraph)
        try:
            view = store.view()
            # the view's arrays live in the shared segment, not the heap
            assert view.graph.indptr.base is not None
            seg = shared_memory.SharedMemory(name=store.key)
            seg.close()
            view.detach()
        finally:
            store.close()

    def test_close_unlinks_segment(self, distgraph):
        store = SharedGraphStore(distgraph)
        name = store.key
        store.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_close_is_idempotent_and_invalidates_meta(self, distgraph):
        store = SharedGraphStore(distgraph)
        store.close()
        store.close()
        with pytest.raises(ModelError):
            store.meta()


class TestProcessEngineScheduling:
    def test_lazy_pool_and_results_in_machine_order(self, distgraph):
        with _cluster() as cluster:
            engine = cluster.engine
            assert isinstance(engine, ProcessEngine)
            assert not engine.running  # no map yet -> no processes
            results = cluster.map_machines(
                _sum_local_degrees, distgraph, [100 * i for i in range(K)]
            )
            assert engine.running
            expected = [
                100 * i + int(np.diff(distgraph.graph.indptr)[distgraph.parts[i]].sum())
                for i in range(K)
            ]
            assert results == expected

    def test_kernels_run_in_distinct_worker_processes(self, distgraph):
        if (os.cpu_count() or 1) < 1:  # pragma: no cover
            pytest.skip("no cpu info")
        with _cluster(workers=2) as cluster:
            pids = cluster.map_machines(_pid, distgraph, [None] * K)
            assert os.getpid() not in pids  # never inline
            # machine i is pinned to worker i % 2
            assert pids[0] == pids[2] and pids[1] == pids[3]
            assert len(set(pids)) == 2

    def test_rng_streams_match_inline_engines(self, distgraph):
        with _cluster(seed=5) as proc:
            inline = Cluster(k=K, n=60, seed=5, engine="vector")
            a = [proc.map_machines(_draw, distgraph, [None] * K) for _ in range(3)]
            b = [inline.map_machines(_draw, distgraph, [None] * K) for _ in range(3)]
            assert a == b
            # worker-held generators advanced exactly like the inline ones
            pulled = proc.engine.pull_machine_rngs()
            for i in range(K):
                assert (
                    pulled[i].random() == inline.machine_rngs[i].random()
                )

    def test_parent_rng_draws_rejected_after_shipping(self, distgraph):
        # Once streams ship to the workers, the parent copies are stale;
        # drawing from them would silently diverge from the inline
        # engines, so the slots are replaced with raising sentinels.
        with _cluster() as cluster:
            cluster.machine_rngs[0].random()  # fine before the first map
            cluster.map_machines(_draw, distgraph, [None] * K)
            with pytest.raises(ModelError, match="worker"):
                cluster.machine_rngs[0].random()
            with pytest.raises(ModelError, match="map_machines"):
                cluster.machine_rngs[K - 1].integers(0, 2)
            # shared randomness is not delegated and keeps working
            cluster.shared_rng.random()

    def test_kernel_exception_propagates_and_poisons_pool(self, distgraph):
        with _cluster() as cluster:
            with pytest.raises(ModelError, match="kernel exploded"):
                cluster.map_machines(_raise_one, distgraph, [2] * K)
            # Other machines' streams already advanced past where the
            # inline serial loop would have stopped, so the pool cannot
            # reproduce inline draws anymore: it must not accept retries.
            assert not cluster.engine.running
            with pytest.raises(ModelError, match="closed"):
                cluster.map_machines(_draw, distgraph, [None] * K)

    def test_payload_count_validated(self, distgraph):
        with _cluster() as cluster:
            with pytest.raises(ModelError, match="payload"):
                cluster.map_machines(_draw, distgraph, [None] * (K + 1))


class TestStoreEviction:
    def test_store_cache_is_bounded_lru(self):
        from repro.kmachine.parallel import pool as ppool

        g = repro.gnp_random_graph(40, 0.2, seed=1)
        distgraphs = [
            DistributedGraph(g, random_vertex_partition(g.n, K, seed=s))
            for s in range(ppool.MAX_STORES + 2)
        ]
        with _cluster(n=g.n) as cluster:
            keys = []
            for dg in distgraphs:
                cluster.map_machines(_sum_local_degrees, dg, [0] * K)
                keys.append(list(cluster.engine.pool._stores.values())[-1].key)
            assert len(cluster.engine.pool._stores) == ppool.MAX_STORES
            # the two oldest segments were unlinked
            for key in keys[:2]:
                with pytest.raises(FileNotFoundError):
                    shared_memory.SharedMemory(name=key)
            # evicted distgraphs republish (and still compute correctly)
            sums = cluster.map_machines(_sum_local_degrees, distgraphs[0], [0] * K)
            assert sum(sums) == int(g.indices.size)


class TestWorkerCrashCleanup:
    def test_crash_shuts_pool_and_unlinks_segments(self, distgraph):
        cluster = _cluster()
        engine = cluster.engine
        # healthy superstep first, so the store is published
        cluster.map_machines(_sum_local_degrees, distgraph, [0] * K)
        segment = engine.pool.ensure_store(distgraph).key
        with pytest.raises(ModelError, match="died"):
            cluster.map_machines(_crash_one, distgraph, [1] * K)
        assert not engine.running
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=segment)
        cluster.close()  # idempotent after crash

    def test_closed_engine_rejects_new_work(self, distgraph):
        cluster = _cluster()
        cluster.map_machines(_sum_local_degrees, distgraph, [0] * K)
        cluster.close()
        with pytest.raises(ModelError, match="closed"):
            cluster.map_machines(_sum_local_degrees, distgraph, [0] * K)

    @pytest.mark.skipif(not os.path.isdir("/dev/shm"), reason="needs /dev/shm")
    def test_crash_leaks_no_shipping_segments(self, distgraph):
        # Regression: a hard crash mid-superstep must also release the
        # per-shipment segments — the surviving workers' queued replies
        # and every undelivered payload wire — not just the graph store.
        import glob

        shutdown_worker_pools()
        before = set(glob.glob("/dev/shm/psm_*"))
        cluster = _cluster(workers=K)
        with pytest.raises(ModelError, match="died"):
            cluster.map_machines(
                _crash_or_big, distgraph, [np.zeros(20_000)] * K
            )
        shutdown_worker_pools()
        assert set(glob.glob("/dev/shm/psm_*")) - before == set()


class TestEngineSelection:
    def test_cluster_process_engine_and_worker_cap(self):
        c = Cluster(k=3, n=50, seed=1, engine="process", workers=16)
        assert c.engine.name == "process"
        assert c.engine.workers == 3  # capped at k
        c.close()

    def test_workers_rejected_for_inline_engines(self):
        net = LinkNetwork(k=3, bandwidth=8)
        with pytest.raises(ModelError, match="workers"):
            make_engine("vector", net, workers=2)
        with pytest.raises(ModelError, match="workers"):
            Cluster(k=3, n=50, engine="message", workers=2)

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ModelError, match="workers"):
            Cluster(k=3, n=50, engine="process", workers=0)

    def test_exchange_layer_is_vector_inherited(self):
        # the process backend's exchange path is VectorEngine's, verbatim
        from repro.kmachine.engine import VectorEngine

        assert issubclass(ProcessEngine, VectorEngine)
        assert ProcessEngine.exchange_batches is VectorEngine.exchange_batches


class TestAttachCrossProcess:
    def test_worker_attachment_reads_identical_arrays(self, distgraph):
        """A view attached in a real worker sees the published arrays."""
        with _cluster() as cluster:
            sums = cluster.map_machines(_sum_local_degrees, distgraph, [0] * K)
            assert sum(sums) == int(distgraph.graph.indices.size)


class TestShipping:
    def test_small_shipments_stay_inline(self):
        obj = {"a": np.arange(4), "b": None}
        wire = shipping.ship(obj)
        assert wire[0] == "inline" and wire[1] is obj
        assert shipping.receive(wire) is obj

    def test_large_shipment_roundtrips_through_shared_memory(self):
        obj = {
            "cols": {"u": np.arange(500, dtype=np.int64), "v": np.arange(500.0)},
            "pair": (np.ones((7, 2)), "label", 3),
            "empty": np.zeros(0, dtype=np.int32),
            "none": None,
        }
        wire = shipping.ship(obj, threshold=0)
        assert wire[0] == "shm"
        name = wire[2]
        out = shipping.receive(wire)
        assert np.array_equal(out["cols"]["u"], obj["cols"]["u"])
        assert np.array_equal(out["cols"]["v"], obj["cols"]["v"])
        assert np.array_equal(out["pair"][0], obj["pair"][0])
        assert out["pair"][1:] == ("label", 3)
        assert out["empty"].size == 0 and out["empty"].dtype == np.int32
        assert out["none"] is None
        # the receiver consumed (unlinked) the per-shipment segment
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_object_and_structured_arrays_ride_the_pipe(self):
        rec = np.zeros(3, dtype=[("a", np.int64), ("b", np.float64)])
        objarr = np.array([None, "x"], dtype=object)
        wire = shipping.ship({"rec": rec, "obj": objarr}, threshold=0)
        assert wire[0] == "inline"

    def test_discard_releases_an_undelivered_segment(self):
        wire = shipping.ship(np.arange(1000), threshold=0)
        assert wire[0] == "shm"
        shipping.discard(wire)
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=wire[2])
        shipping.discard(wire)  # idempotent

    def test_map_machines_results_survive_forced_shm_path(
        self, distgraph, monkeypatch
    ):
        # Force every payload/result shipment through shared memory and
        # check kernels still see (and return) identical data.  The
        # patched threshold is inherited by the freshly forked pool.
        shutdown_worker_pools()
        monkeypatch.setattr(shipping, "SHM_MIN_BYTES", 0)
        try:
            with _cluster() as cluster:
                payloads = [np.arange(100) + i for i in range(K)]
                out = cluster.map_machines(_echo_scaled, distgraph, payloads)
                for i in range(K):
                    assert np.array_equal(out[i]["doubled"], payloads[i] * 2)
                    assert out[i]["tag"] == i
                    assert out[i]["empty"].size == 0
        finally:
            shutdown_worker_pools()  # don't leak a force-shm pool to other tests


class TestWarmPools:
    def test_consecutive_clusters_reuse_the_same_workers(self, distgraph):
        shutdown_worker_pools()
        with _cluster() as c1:
            c1.map_machines(_pid, distgraph, [None] * K)
            pool1 = c1.engine.pool
            pids1 = pool1.pids
        # released warm: same pool object, same worker processes
        with _cluster() as c2:
            pids2 = c2.map_machines(_pid, distgraph, [None] * K)
            assert c2.engine.pool is pool1
        assert set(pids2) == set(pids1)

    def test_warm_pool_keeps_published_stores(self, distgraph):
        shutdown_worker_pools()
        with _cluster() as c1:
            c1.map_machines(_sum_local_degrees, distgraph, [0] * K)
            store_key = c1.engine.pool.ensure_store(distgraph).key
        with _cluster() as c2:
            sums = c2.map_machines(_sum_local_degrees, distgraph, [0] * K)
            assert sum(sums) == int(distgraph.graph.indices.size)
            # same segment, no republication
            assert c2.engine.pool.ensure_store(distgraph).key == store_key

    def test_held_pools_are_exclusive(self, distgraph):
        shutdown_worker_pools()
        c1, c2 = _cluster(), _cluster()
        try:
            c1.map_machines(_pid, distgraph, [None] * K)
            c2.map_machines(_pid, distgraph, [None] * K)
            assert c1.engine.pool is not c2.engine.pool
        finally:
            c1.close()
            c2.close()

    def test_idle_pools_are_trimmed(self, distgraph):
        shutdown_worker_pools()
        clusters = [_cluster(workers=w) for w in (1, 2, 3)]
        try:
            for c in clusters:
                c.map_machines(_pid, distgraph, [None] * K)
        finally:
            for c in clusters:
                c.close()
        idle = [p for p in active_pools() if p.holder is None]
        assert len(idle) == ppool.MAX_IDLE_POOLS

    def test_rng_streams_are_replaced_per_holder(self, distgraph):
        # Pool reuse must not leak randomness: a fresh cluster on a warm
        # pool draws exactly what a fresh cluster on a cold pool draws.
        shutdown_worker_pools()
        with _cluster(seed=5) as warmup:
            warmup.map_machines(_draw, distgraph, [None] * K)
        with _cluster(seed=5) as reused:  # warm pool, fresh streams
            warm_draws = reused.map_machines(_draw, distgraph, [None] * K)
        shutdown_worker_pools()
        with _cluster(seed=5) as cold:
            cold_draws = cold.map_machines(_draw, distgraph, [None] * K)
        assert warm_draws == cold_draws

    def test_disabled_warm_pools_destroy_on_release(self, distgraph, monkeypatch):
        shutdown_worker_pools()
        monkeypatch.setenv(ppool.WARM_ENV, "0")
        with _cluster() as cluster:
            cluster.map_machines(_pid, distgraph, [None] * K)
            pool = cluster.engine.pool
        assert not pool.alive
        assert pool not in active_pools()

    def test_kernel_error_releases_pool_warm_but_not_poisoned(self, distgraph):
        shutdown_worker_pools()
        cluster = _cluster(seed=5)
        with pytest.raises(ModelError, match="kernel exploded"):
            cluster.map_machines(_raise_one, distgraph, [2] * K)
        # the pool survived (fresh streams make it reusable) ...
        idle = [p for p in active_pools() if p.holder is None]
        assert len(idle) == 1
        with _cluster(seed=5) as fresh:
            draws = fresh.map_machines(_draw, distgraph, [None] * K)
            assert fresh.engine.pool is idle[0]
        shutdown_worker_pools()
        with _cluster(seed=5) as cold:
            assert cold.map_machines(_draw, distgraph, [None] * K) == draws

    def test_shutdown_worker_pools_joins_and_unlinks(self, distgraph):
        shutdown_worker_pools()
        cluster = _cluster()
        cluster.map_machines(_sum_local_degrees, distgraph, [0] * K)
        pool = cluster.engine.pool
        segment = pool.ensure_store(distgraph).key
        procs = list(pool._procs)
        cluster.close()
        shutdown_worker_pools()
        assert active_pools() == ()
        assert all(not proc.is_alive() for proc in procs)
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=segment)


class TestClusterLifecycle:
    def test_close_is_idempotent(self, distgraph):
        cluster = _cluster()
        cluster.map_machines(_pid, distgraph, [None] * K)
        cluster.close()
        cluster.close()
        cluster.close()
        assert not cluster.engine.running

    def test_leaked_cluster_releases_its_pool(self, distgraph):
        # Regression: a cluster that is never closed must not strand a
        # held worker pool (or its shared-memory segments) — the GC
        # finalizer releases it back to the warm registry.
        shutdown_worker_pools()
        cluster = _cluster()
        cluster.map_machines(_pid, distgraph, [None] * K)
        pool = cluster.engine.pool
        assert pool.holder is cluster.engine
        del cluster
        gc.collect()
        assert pool.holder is None
        assert pool in active_pools() and pool.alive
        # and the next cluster can acquire it
        with _cluster() as fresh:
            fresh.map_machines(_pid, distgraph, [None] * K)
            assert fresh.engine.pool is pool

    def test_leaked_cluster_with_warm_pools_disabled_frees_segments(
        self, distgraph, monkeypatch
    ):
        shutdown_worker_pools()
        monkeypatch.setenv(ppool.WARM_ENV, "0")
        cluster = _cluster()
        cluster.map_machines(_sum_local_degrees, distgraph, [0] * K)
        segment = cluster.engine.pool.ensure_store(distgraph).key
        del cluster
        gc.collect()
        assert active_pools() == ()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=segment)
