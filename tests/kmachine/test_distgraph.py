"""Unit tests for the DistributedGraph shard layer."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.graphs.graph import Graph
from repro.kmachine.distgraph import DistributedGraph
from repro.kmachine.partition import VertexPartition, random_vertex_partition


def make_dg(n=12, k=3, seed=7, p=0.4):
    rng = np.random.default_rng(seed)
    pairs = [(u, v) for u in range(n) for v in range(u + 1, n) if rng.random() < p]
    g = Graph(n=n, edges=np.array(pairs, dtype=np.int64).reshape(-1, 2))
    part = random_vertex_partition(n, k, seed=seed)
    return g, part, DistributedGraph(g, part)


class TestConstruction:
    def test_rejects_mismatched_partition(self):
        g = Graph(n=4, edges=[(0, 1)])
        part = random_vertex_partition(5, 2, seed=0)
        with pytest.raises(PartitionError):
            DistributedGraph(g, part)

    def test_basic_attributes(self):
        g, part, dg = make_dg()
        assert dg.n == g.n and dg.k == part.k
        assert dg.home is part.home


class TestCachedViews:
    def test_parts_match_partition(self):
        _, part, dg = make_dg()
        expected = part.vertices_by_machine()
        for a, b in zip(dg.parts, expected):
            assert np.array_equal(a, b)
        assert dg.parts is dg.parts  # cached object identity

    def test_nbr_home_matches_fancy_index(self):
        g, part, dg = make_dg()
        assert np.array_equal(dg.nbr_home, part.home[g.indices])

    def test_degrees_cached(self):
        g, _, dg = make_dg()
        assert np.array_equal(dg.degrees, g.out_degrees())
        assert dg.degrees is dg.degrees

    def test_edge_homes(self):
        g, part, dg = make_dg()
        eh0, eh1 = dg.edge_homes
        assert np.array_equal(eh0, part.home[g.edges[:, 0]])
        assert np.array_equal(eh1, part.home[g.edges[:, 1]])

    def test_edge_homes_empty_graph(self):
        g = Graph(n=5)
        dg = DistributedGraph(g, random_vertex_partition(5, 2, seed=1))
        eh0, eh1 = dg.edge_homes
        assert eh0.size == 0 and eh1.size == 0


class TestPerVertexViews:
    def test_neighbors_and_homes(self):
        g, part, dg = make_dg()
        for v in range(g.n):
            nbrs = g.out_neighbors(v)
            assert np.array_equal(dg.neighbors(v), nbrs)
            assert np.array_equal(dg.neighbor_homes(v), part.home[nbrs])

    def test_local_neighbors_matches_mask(self):
        g, part, dg = make_dg()
        for v in range(g.n):
            nbrs = g.out_neighbors(v)
            for i in range(dg.k):
                expected = nbrs[part.home[nbrs] == i]
                assert np.array_equal(dg.local_neighbors(v, i), expected)


class TestShards:
    def test_shard_covers_hosted_vertices(self):
        g, part, dg = make_dg()
        seen = []
        for i in range(dg.k):
            sh = dg.shard(i)
            assert sh.machine == i
            assert np.array_equal(sh.vertices, part.machine_vertices(i))
            seen.extend(sh.vertices.tolist())
            for row, v in enumerate(sh.vertices):
                assert np.array_equal(sh.neighbors(row), g.out_neighbors(v))
            assert np.array_equal(sh.degrees, g.out_degrees()[sh.vertices])
            assert np.array_equal(sh.nbr_home, part.home[sh.indices])
        assert sorted(seen) == list(range(g.n))

    def test_shard_cached(self):
        _, _, dg = make_dg()
        assert dg.shard(0) is dg.shard(0)

    def test_shard_rejects_bad_machine(self):
        _, _, dg = make_dg()
        with pytest.raises(PartitionError):
            dg.shard(dg.k)

    def test_shards_builds_all(self):
        _, _, dg = make_dg()
        assert len(dg.shards()) == dg.k

    def test_empty_machine_shard(self):
        g = Graph(n=3, edges=[(0, 1)])
        part = VertexPartition(home=np.array([0, 0, 0]), k=2)
        dg = DistributedGraph(g, part)
        sh = dg.shard(1)
        assert sh.vertices.size == 0 and sh.indices.size == 0


class TestBatchHelpers:
    def test_split_local_remote(self):
        g, part, dg = make_dg()
        dv = np.arange(g.n)
        vals = np.arange(g.n) * 10
        for i in range(dg.k):
            lv, lc, rv, rc, rdst = dg.split_local_remote(i, dv, vals)
            mask = part.home[dv] == i
            assert np.array_equal(lv, dv[mask])
            assert np.array_equal(lc, vals[mask])
            assert np.array_equal(rv, dv[~mask])
            assert np.array_equal(rc, vals[~mask])
            assert np.array_equal(rdst, part.home[dv[~mask]])

    def test_group_by_machine_matches_flatnonzero(self):
        _, _, dg = make_dg()
        rng = np.random.default_rng(3)
        assignment = rng.integers(0, dg.k, size=50)
        groups = dg.group_by_machine(assignment)
        assert len(groups) == dg.k
        for i, idx in enumerate(groups):
            assert np.array_equal(idx, np.flatnonzero(assignment == i))

    def test_group_by_machine_empty(self):
        _, _, dg = make_dg()
        groups = dg.group_by_machine(np.zeros(0, dtype=np.int64))
        assert all(idx.size == 0 for idx in groups)

    def test_edges_by_shipper_default_rule(self):
        g, part, dg = make_dg()
        groups = dg.edges_by_shipper()
        shipper = part.home[g.edges[:, 0]]
        for i, idx in enumerate(groups):
            assert np.array_equal(idx, np.flatnonzero(shipper == i))

    def test_edges_by_shipper_explicit(self):
        g, _, dg = make_dg()
        shipper = np.zeros(g.m, dtype=np.int64)
        groups = dg.edges_by_shipper(shipper)
        assert groups[0].size == g.m
        assert all(groups[i].size == 0 for i in range(1, dg.k))
