"""Unit tests for round/message/bit accounting."""

import numpy as np
import pytest

from repro.kmachine.metrics import Metrics


def mats(k, entries):
    """Build (bits, msgs) matrices from {(i, j): (bits, msgs)}."""
    bits = np.zeros((k, k), dtype=np.int64)
    msgs = np.zeros((k, k), dtype=np.int64)
    for (i, j), (b, m) in entries.items():
        bits[i, j] = b
        msgs[i, j] = m
    return bits, msgs


class TestRecordPhase:
    def test_round_is_ceiling_of_max_link(self):
        met = Metrics(k=3, bandwidth=10)
        bits, msgs = mats(3, {(0, 1): (25, 5), (1, 2): (9, 1)})
        stats = met.record_phase(bits, msgs)
        assert stats.rounds == 3  # ceil(25/10)
        assert met.rounds == 3

    def test_exact_multiple_of_bandwidth(self):
        met = Metrics(k=2, bandwidth=10)
        bits, msgs = mats(2, {(0, 1): (30, 1)})
        assert met.record_phase(bits, msgs).rounds == 3

    def test_empty_phase_costs_zero(self):
        met = Metrics(k=2, bandwidth=10)
        bits, msgs = mats(2, {})
        assert met.record_phase(bits, msgs).rounds == 0
        assert met.phases == 1

    def test_totals_accumulate(self):
        met = Metrics(k=3, bandwidth=8)
        bits, msgs = mats(3, {(0, 1): (16, 2), (2, 0): (8, 1)})
        met.record_phase(bits, msgs)
        met.record_phase(bits, msgs)
        assert met.rounds == 4 and met.messages == 6 and met.bits == 48
        assert met.phases == 2

    def test_per_machine_aggregates(self):
        met = Metrics(k=3, bandwidth=8)
        bits, msgs = mats(3, {(0, 1): (16, 2), (0, 2): (8, 3), (1, 2): (8, 1)})
        met.record_phase(bits, msgs)
        assert met.sent_messages.tolist() == [5, 1, 0]
        assert met.received_messages.tolist() == [0, 2, 4]
        assert met.max_machine_sent == 5
        assert met.max_machine_received == 4

    def test_phase_stats_machine_extremes(self):
        met = Metrics(k=3, bandwidth=8)
        bits, msgs = mats(3, {(0, 1): (16, 2), (0, 2): (8, 3)})
        stats = met.record_phase(bits, msgs)
        assert stats.max_machine_sent == 5
        assert stats.max_machine_received == 3
        assert stats.max_link_bits == 16

    def test_rejects_diagonal_load(self):
        met = Metrics(k=2, bandwidth=8)
        bits = np.zeros((2, 2), dtype=np.int64)
        bits[0, 0] = 4
        with pytest.raises(ValueError, match="diagonal"):
            met.record_phase(bits, np.zeros((2, 2), dtype=np.int64))

    def test_rejects_wrong_shape(self):
        met = Metrics(k=3, bandwidth=8)
        with pytest.raises(ValueError, match="shape"):
            met.record_phase(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_rejects_negative_load(self):
        met = Metrics(k=2, bandwidth=8)
        bits = np.zeros((2, 2), dtype=np.int64)
        bits[0, 1] = -1
        with pytest.raises(ValueError, match="non-negative"):
            met.record_phase(bits, np.zeros((2, 2), dtype=np.int64))

    def test_local_messages_counted_separately(self):
        met = Metrics(k=2, bandwidth=8)
        bits, msgs = mats(2, {})
        met.record_phase(bits, msgs, local_messages=7)
        assert met.local_messages == 7
        assert met.messages == 0


class TestMergeAndConsistency:
    def test_merge_adds_everything(self):
        a = Metrics(k=2, bandwidth=8)
        b = Metrics(k=2, bandwidth=8)
        bits, msgs = mats(2, {(0, 1): (8, 1)})
        a.record_phase(bits, msgs)
        b.record_phase(bits, msgs)
        b.record_phase(bits, msgs)
        a.merge(b)
        assert a.rounds == 3 and a.messages == 3 and a.phases == 3

    def test_merge_rejects_mismatched_config(self):
        a = Metrics(k=2, bandwidth=8)
        b = Metrics(k=3, bandwidth=8)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_check_conservation_passes(self):
        met = Metrics(k=3, bandwidth=8)
        bits, msgs = mats(3, {(0, 1): (16, 2), (1, 2): (8, 1)})
        met.record_phase(bits, msgs)
        met.check_conservation()

    def test_as_dict_keys(self):
        met = Metrics(k=2, bandwidth=8)
        d = met.as_dict()
        for key in ("k", "bandwidth", "rounds", "messages", "bits"):
            assert key in d

    def test_check_conservation_covers_merged_metrics(self):
        a = Metrics(k=2, bandwidth=8)
        b = Metrics(k=2, bandwidth=8)
        bits, msgs = mats(2, {(0, 1): (24, 3)})
        a.record_phase(bits, msgs, label="a")
        b.record_phase(bits, msgs, label="b")
        a.merge(b)
        a.check_conservation()
        assert a.max_link_bits == 24

    def test_check_conservation_catches_dropped_phase(self):
        met = Metrics(k=2, bandwidth=8)
        bits, msgs = mats(2, {(0, 1): (8, 1)})
        met.record_phase(bits, msgs)
        met.record_phase(bits, msgs)
        met.phase_log.pop()  # a buggy merge that loses phase entries
        with pytest.raises(AssertionError, match="phase"):
            met.check_conservation()

    def test_check_conservation_catches_corrupt_machine_arrays(self):
        met = Metrics(k=3, bandwidth=8)
        bits, msgs = mats(3, {(0, 1): (8, 1)})
        met.record_phase(bits, msgs)
        met.sent_messages = met.sent_messages[:2]  # wrong shape after a bad merge
        with pytest.raises(AssertionError, match="shape"):
            met.check_conservation()
        met = Metrics(k=3, bandwidth=8)
        met.record_phase(bits, msgs)
        met.received_bits[1] = -4
        with pytest.raises(AssertionError, match="negative"):
            met.check_conservation()

    def test_as_dict_phase_summary_has_max_link_bits(self):
        met = Metrics(k=2, bandwidth=8)
        bits, msgs = mats(2, {(0, 1): (24, 3)})
        met.record_phase(bits, msgs, label="tokens")
        d = met.as_dict()
        assert d["max_link_bits"] == 24
        assert d["phase_summary"] == [
            {"label": "tokens", "rounds": 3, "messages": 3, "bits": 24,
             "max_link_bits": 24, "max_machine_sent": 3,
             "max_machine_received": 3}
        ]

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            Metrics(k=1, bandwidth=8)
        with pytest.raises(ValueError):
            Metrics(k=2, bandwidth=0)
