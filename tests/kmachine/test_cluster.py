"""Unit tests for the Cluster orchestration layer."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro._util import polylog
from repro.kmachine.cluster import Cluster
from repro.kmachine.message import Message


class TestClusterConstruction:
    def test_default_bandwidth_is_polylog(self):
        c = Cluster(k=4, n=1000)
        assert c.bandwidth == polylog(1000)

    def test_explicit_bandwidth(self):
        c = Cluster(k=4, bandwidth=7)
        assert c.bandwidth == 7

    def test_requires_bandwidth_or_n(self):
        with pytest.raises(ModelError):
            Cluster(k=4)

    def test_rejects_k_below_two(self):
        with pytest.raises(ModelError):
            Cluster(k=1, n=10)

    def test_per_machine_rngs_are_independent(self):
        c = Cluster(k=4, n=100, seed=5)
        draws = [rng.integers(0, 1_000_000) for rng in c.machine_rngs]
        assert len(set(int(d) for d in draws)) > 1

    def test_seeded_reproducibility(self):
        a = Cluster(k=4, n=100, seed=5)
        b = Cluster(k=4, n=100, seed=5)
        for ra, rb in zip(a.machine_rngs, b.machine_rngs):
            assert ra.integers(0, 10**9) == rb.integers(0, 10**9)
        assert a.shared_rng.integers(0, 10**9) == b.shared_rng.integers(0, 10**9)


class TestClusterOperations:
    def test_exchange_accounts_rounds(self):
        c = Cluster(k=3, bandwidth=8, seed=0)
        out = c.empty_outboxes()
        out[0].append(Message(src=0, dst=1, kind="x", bits=16))
        c.exchange(out)
        assert c.rounds == 2

    def test_empty_outboxes_fresh_lists(self):
        c = Cluster(k=3, bandwidth=8)
        a = c.empty_outboxes()
        a[0].append("sentinel")
        b = c.empty_outboxes()
        assert b[0] == []

    def test_broadcast_reaches_everyone_else(self):
        c = Cluster(k=5, bandwidth=64, seed=0)
        inboxes = c.broadcast(2, kind="hello", payload=7, bits=4)
        for j in range(5):
            if j == 2:
                assert inboxes[j] == []
            else:
                assert len(inboxes[j]) == 1 and inboxes[j][0].payload == 7

    def test_broadcast_costs_one_round_when_it_fits(self):
        c = Cluster(k=5, bandwidth=64, seed=0)
        c.broadcast(0, kind="b", payload=None, bits=4)
        assert c.rounds == 1

    def test_broadcast_rejects_bad_source(self):
        c = Cluster(k=3, bandwidth=8)
        with pytest.raises(ModelError):
            c.broadcast(3, kind="b", payload=None, bits=4)

    def test_account_phase_passthrough(self):
        c = Cluster(k=3, bandwidth=8)
        bits = np.zeros((3, 3), dtype=np.int64)
        msgs = np.zeros((3, 3), dtype=np.int64)
        bits[0, 1] = 9
        msgs[0, 1] = 1
        assert c.account_phase(bits, msgs) == 2

    def test_reset_metrics(self):
        c = Cluster(k=3, bandwidth=8, seed=0)
        c.broadcast(0, kind="b", payload=None, bits=4)
        c.reset_metrics()
        assert c.rounds == 0


class TestRunDriver:
    @staticmethod
    def finite_driver(steps_needed):
        calls = {"n": 0}

        def step(cluster, state):
            calls["n"] += 1
            return calls["n"] < steps_needed

        return step, calls

    def test_runs_until_driver_completes(self):
        c = Cluster(k=2, bandwidth=8, seed=0)
        step, calls = self.finite_driver(3)
        c.run_driver(step)
        assert calls["n"] == 3
        assert c.last_driver_supersteps == 3

    def test_raises_when_max_steps_exhausted(self):
        c = Cluster(k=2, bandwidth=8, seed=0)
        step, _ = self.finite_driver(10)
        with pytest.raises(ModelError, match="max_steps=4"):
            c.run_driver(step, max_steps=4)
        assert c.last_driver_supersteps == 4

    def test_on_exhaust_return_gives_partial_state(self):
        c = Cluster(k=2, bandwidth=8, seed=0)
        step, calls = self.finite_driver(10)
        state = {"tag": 1}
        assert c.run_driver(step, state=state, max_steps=4, on_exhaust="return") is state
        assert calls["n"] == 4
        assert c.last_driver_supersteps == 4

    def test_completion_on_last_allowed_step_does_not_raise(self):
        c = Cluster(k=2, bandwidth=8, seed=0)
        step, _ = self.finite_driver(4)
        c.run_driver(step, max_steps=4)
        assert c.last_driver_supersteps == 4

    def test_rejects_bad_on_exhaust(self):
        c = Cluster(k=2, bandwidth=8, seed=0)
        with pytest.raises(ModelError):
            c.run_driver(lambda cl, s: False, on_exhaust="ignore")

    def test_rejects_non_callable_driver(self):
        c = Cluster(k=2, bandwidth=8, seed=0)
        with pytest.raises(ModelError):
            c.run_driver(object())

    def test_step_method_driver(self):
        c = Cluster(k=2, bandwidth=8, seed=0)

        class Driver:
            remaining = 2

            def step(self, cluster, state):
                self.remaining -= 1
                return self.remaining > 0

        c.run_driver(Driver())
        assert c.last_driver_supersteps == 2
