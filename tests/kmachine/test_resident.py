"""Lifecycle tests for worker-resident driver state and outbox assembly.

The resident contract (``Engine.install_resident`` / ``pull_resident``
/ ``drop_resident`` + ``map_machines(..., resident=, assemble=)``) keeps
per-machine driver state inside the owning shard workers between
supersteps.  That state must be *holder-scoped*: a warm pool handed from
one cluster to the next must never serve the previous holder's states,
a worker crash must invalidate every installed bundle, and handles must
not cross engine kinds.  These tests pin that lifecycle end to end,
including two sequential ``runtime.run(engine="process")`` calls with
different algorithms sharing one warm pool.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

import repro
from repro import runtime
from repro.errors import ModelError
from repro.kmachine.cluster import Cluster
from repro.kmachine.distgraph import DistributedGraph
from repro.kmachine.parallel import shutdown_worker_pools
from repro.kmachine.parallel import pool as ppool
from repro.kmachine.partition import random_vertex_partition

K = 4


@pytest.fixture
def distgraph():
    g = repro.gnp_random_graph(60, 0.15, seed=3)
    return DistributedGraph(g, random_vertex_partition(60, K, seed=7))


def _cluster(engine="process", workers=2, k=K, n=60, seed=11) -> Cluster:
    kwargs = {"workers": workers} if engine == "process" else {}
    return Cluster(k=k, n=n, seed=seed, engine=engine, **kwargs)


# -- module-level kernels (workers resolve them by reference) -----------
def _bump(ctx, machine, rng, payload, state):
    state["count"] += payload
    state["seen"].append(machine)
    return state["count"]


def _read_count(ctx, machine, rng, payload, state):
    return state["count"]


def _crash_holder(ctx, machine, rng, payload, state):
    if machine == payload:
        os._exit(11)
    return state["count"]


def _emit_rows(ctx, machine, rng, payload, state):
    state["count"] += 1
    return {"src": np.full(payload, machine, dtype=np.int64),
            "val": np.arange(payload, dtype=np.int64)}


def _concat_rows(machines, results):
    return {
        "src": np.concatenate([r["src"] for r in results]),
        "val": np.concatenate([r["val"] for r in results]),
        "machines": list(machines),
    }


def _fresh_states():
    return [{"count": 0, "seen": []} for _ in range(K)]


class TestResidentRoundTrip:
    @pytest.mark.parametrize("engine", ["message", "vector", "process"])
    def test_install_map_pull_drop(self, engine, distgraph):
        with _cluster(engine=engine) as cluster:
            handle = cluster.install_resident(_fresh_states(), distgraph=distgraph)
            out1 = cluster.map_machines(_bump, distgraph, [2] * K, resident=handle)
            out2 = cluster.map_machines(_bump, distgraph, [3] * K, resident=handle)
            assert out1 == [2] * K
            assert out2 == [5] * K  # mutation persisted between supersteps
            states = cluster.pull_resident(handle)
            assert [s["count"] for s in states] == [5] * K
            assert [s["seen"] for s in states] == [[i, i] for i in range(K)]
            cluster.drop_resident(handle)
            with pytest.raises(ModelError):
                cluster.map_machines(_read_count, distgraph, [None] * K,
                                     resident=handle)

    @pytest.mark.parametrize("engine", ["vector", "process"])
    def test_assemble_groups_cover_all_machines(self, engine, distgraph):
        with _cluster(engine=engine) as cluster:
            handle = cluster.install_resident(_fresh_states(), distgraph=distgraph)
            groups = cluster.map_machines(
                _emit_rows, distgraph, [3] * K, resident=handle,
                assemble=_concat_rows,
            )
            covered = sorted(m for g in groups for m in g["machines"])
            assert covered == list(range(K))
            # Within a group machines are ascending and rows contiguous.
            for g in groups:
                assert g["machines"] == sorted(g["machines"])
                assert np.array_equal(
                    g["src"], np.repeat(np.asarray(g["machines"]), 3))
            if engine == "process":
                assert len(groups) == cluster.engine.workers
            else:
                assert len(groups) == 1

    def test_install_before_first_superstep_ships_rngs(self, distgraph):
        # install_resident as the very first pool interaction must not
        # desync the RNG handoff: draws afterwards match the inline run.
        def draws(engine):
            with _cluster(engine=engine) as cluster:
                handle = cluster.install_resident(
                    _fresh_states(), distgraph=distgraph)
                out = cluster.map_machines(
                    _draw_with_state, distgraph, [None] * K, resident=handle)
                cluster.drop_resident(handle)
                return out

        shutdown_worker_pools()
        assert draws("process") == draws("vector")


def _draw_with_state(ctx, machine, rng, payload, state):
    return float(rng.random())


class TestResidentTraceSpans:
    @pytest.mark.parametrize("engine", ["message", "vector", "process"])
    def test_install_and_pull_emit_resident_spans(self, engine, distgraph):
        from repro.obs.trace import Tracer

        with _cluster(engine=engine) as cluster:
            tracer = Tracer()
            cluster.engine.tracer = tracer
            handle = cluster.install_resident(
                _fresh_states(), distgraph=distgraph)
            cluster.map_machines(_bump, distgraph, [1] * K, resident=handle)
            cluster.pull_resident(handle)
        spans = [e for e in tracer.events
                 if e.get("event") == "phase" and e.get("op") == "resident"]
        labels = [e["label"] for e in spans]
        assert labels == ["install", "pull"]
        assert all(e["wall_s"] >= 0 for e in spans)

    def test_inline_handle_pull_on_process_engine_is_untraced(self, distgraph):
        # The process engine's early return for inline handles is a free
        # parent-side read: no span, so coverage is not polluted with
        # zero-width noise.
        from repro.kmachine.engine import ResidentHandle
        from repro.obs.trace import Tracer

        with _cluster(engine="process") as cluster:
            tracer = Tracer()
            cluster.engine.tracer = tracer
            handle = ResidentHandle("inline-token", _fresh_states())
            cluster.pull_resident(handle)
        assert not any(e.get("op") == "resident" for e in tracer.events)

    def test_resident_spans_fold_into_the_summary(self, distgraph):
        from repro.obs import summarize_trace
        from repro.obs.trace import Tracer

        with _cluster(engine="vector") as cluster:
            tracer = Tracer()
            cluster.engine.tracer = tracer
            handle = cluster.install_resident(
                _fresh_states(), distgraph=distgraph)
            cluster.map_machines(_bump, distgraph, [1] * K, resident=handle)
            cluster.pull_resident(handle)
        summary = summarize_trace(tracer.events)
        resident = [g for g in summary["groups"] if g["op"] == "resident"]
        assert {g["label"] for g in resident} == {"install", "pull"}


class TestHolderScoping:
    def test_warm_pool_handoff_invalidates_previous_residents(self, distgraph):
        shutdown_worker_pools()
        with _cluster() as c1:
            handle = c1.install_resident(_fresh_states(), distgraph=distgraph)
            c1.map_machines(_bump, distgraph, [1] * K, resident=handle)
            pool1 = c1.engine.pool
        # Pool released warm; the next holder reuses the same workers.
        with _cluster() as c2:
            c2.map_machines_plain_ok = c2.map_machines(
                _pid_kernel, distgraph, [None] * K)
            assert c2.engine.pool is pool1
            # The old holder's handle is rejected at the engine boundary.
            with pytest.raises(ModelError, match="not installed"):
                c2.map_machines(_read_count, distgraph, [None] * K,
                                resident=handle)
            # And the worker side really dropped the states: a fresh
            # install under the new holder starts from scratch.
            h2 = c2.install_resident(_fresh_states(), distgraph=distgraph)
            assert c2.map_machines(_read_count, distgraph, [None] * K,
                                   resident=h2) == [0] * K

    def test_two_sequential_runtime_runs_share_a_pool_cleanly(self, monkeypatch):
        # Two different algorithms, one warm pool: the second holder's
        # resident supersteps must match its inline-engine run exactly —
        # any stale first-holder state would break bit-identity.
        monkeypatch.setenv(ppool.WARM_ENV, "1")
        shutdown_worker_pools()
        graph = repro.gnp_random_graph(150, 8 / 150, seed=5)
        try:
            pr_proc = runtime.run("pagerank", graph, K, seed=1,
                                  engine="process", workers=2)
            cc_proc = runtime.run("connectivity", graph, K, seed=1,
                                  engine="process", workers=2)
        finally:
            shutdown_worker_pools()
        pr_inline = runtime.run("pagerank", graph, K, seed=1, engine="vector")
        cc_inline = runtime.run("connectivity", graph, K, seed=1,
                                engine="vector")
        assert np.array_equal(pr_proc.result.estimates,
                              pr_inline.result.estimates)
        assert np.array_equal(cc_proc.result.labels, cc_inline.result.labels)
        assert pr_proc.metrics.bits == pr_inline.metrics.bits
        assert cc_proc.metrics.bits == cc_inline.metrics.bits

    def test_store_eviction_drops_bound_residents(self, distgraph, monkeypatch):
        # A resident bundle installed with distgraph= is bound to that
        # graph's published store: LRU eviction severs it worker-side.
        monkeypatch.setattr(ppool, "MAX_STORES", 1)
        g2 = repro.gnp_random_graph(60, 0.15, seed=9)
        dg2 = DistributedGraph(g2, random_vertex_partition(60, K, seed=8))
        shutdown_worker_pools()
        try:
            with _cluster() as cluster:
                handle = cluster.install_resident(
                    _fresh_states(), distgraph=distgraph)
                cluster.map_machines(_bump, distgraph, [1] * K, resident=handle)
                # Publishing a second graph evicts the first store (and
                # with it the bound resident bundle in every worker).
                cluster.map_machines(_pid_kernel, dg2, [None] * K)
                with pytest.raises(ModelError, match="invalidated"):
                    cluster.map_machines(_read_count, distgraph, [None] * K,
                                         resident=handle)
        finally:
            shutdown_worker_pools()  # the MAX_STORES=1 pool must not leak


def _pid_kernel(ctx, machine, rng, payload):
    return os.getpid()


class TestCrashInvalidation:
    def test_crash_kills_pool_and_residents(self, distgraph):
        shutdown_worker_pools()
        cluster = _cluster()
        handle = cluster.install_resident(_fresh_states(), distgraph=distgraph)
        with pytest.raises(ModelError, match="died"):
            cluster.map_machines(_crash_holder, distgraph, [0] * K,
                                 resident=handle)
        assert not cluster.engine.running
        with pytest.raises(ModelError):
            cluster.pull_resident(handle)
        cluster.close()
        # A fresh cluster gets a fresh pool and a clean install.
        with _cluster() as c2:
            h2 = c2.install_resident(_fresh_states(), distgraph=distgraph)
            assert c2.map_machines(_read_count, distgraph, [None] * K,
                                   resident=h2) == [0] * K


class TestCrossEngineMisuse:
    def test_inline_handle_rejected_by_process_engine(self, distgraph):
        with _cluster(engine="vector") as inline:
            handle = inline.install_resident(_fresh_states())
        with _cluster(engine="process") as proc:
            with pytest.raises(ModelError, match="inline engine"):
                proc.map_machines(_read_count, distgraph, [None] * K,
                                  resident=handle)

    def test_process_handle_rejected_by_inline_engine(self, distgraph):
        shutdown_worker_pools()
        with _cluster(engine="process") as proc:
            handle = proc.install_resident(_fresh_states(), distgraph=distgraph)
            with _cluster(engine="vector") as inline:
                with pytest.raises(ModelError, match="not readable|inline"):
                    inline.map_machines(_read_count, distgraph, [None] * K,
                                        resident=handle)

    def test_foreign_process_handle_rejected(self, distgraph):
        shutdown_worker_pools()
        c1, c2 = _cluster(), _cluster()
        try:
            h1 = c1.install_resident(_fresh_states(), distgraph=distgraph)
            c2.map_machines(_pid_kernel, distgraph, [None] * K)
            with pytest.raises(ModelError, match="not installed"):
                c2.map_machines(_read_count, distgraph, [None] * K,
                                resident=h1)
        finally:
            c1.close()
            c2.close()

    def test_state_count_must_match_k(self):
        with _cluster(engine="vector") as cluster:
            with pytest.raises(ModelError, match="one resident state per machine"):
                cluster.install_resident([{}] * (K - 1))
