"""Unit tests for the pluggable execution-engine layer."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.kmachine import encoding
from repro.kmachine.cluster import Cluster
from repro.kmachine.engine import (
    ENGINES,
    MessageBatch,
    MessageEngine,
    VectorEngine,
    make_engine,
)
from repro.kmachine.message import Message
from repro.kmachine.network import LinkNetwork

ENGINE_NAMES = sorted(ENGINES)


def _batch(src, dst, bits, **columns):
    return MessageBatch(
        kind="t",
        src=np.asarray(src, dtype=np.int64),
        dst=np.asarray(dst, dtype=np.int64),
        bits=np.asarray(bits, dtype=np.int64),
        columns={k: np.asarray(v) for k, v in columns.items()},
    )


class TestMessageBatch:
    def test_validates_lengths(self):
        with pytest.raises(ModelError):
            _batch([0, 1], [1], [4, 4])

    def test_validates_column_lengths(self):
        with pytest.raises(ModelError):
            _batch([0, 1], [1, 0], [4, 4], u=[7])

    def test_rejects_nonpositive_bits(self):
        with pytest.raises(ModelError):
            _batch([0], [1], [0])

    def test_record_roundtrip(self):
        b = _batch([0, 1], [1, 0], [4, 8], u=[10, 20], w=[0.5, 1.5])
        rec = b.to_records()
        assert rec.dtype == encoding.payload_dtype(
            src=np.int64, dst=np.int64, bits=np.int64, u=np.int64, w=np.float64
        )
        back = MessageBatch.from_records("t", rec)
        assert np.array_equal(back.src, b.src)
        assert np.array_equal(back.columns["u"], b.columns["u"])
        assert np.array_equal(back.columns["w"], b.columns["w"])


class TestEngineRegistry:
    def test_registry_contents(self):
        assert ENGINES["message"] is MessageEngine
        assert ENGINES["vector"] is VectorEngine

    def test_make_engine_from_name_and_class(self):
        net = LinkNetwork(3, bandwidth=8)
        assert isinstance(make_engine("vector", net), VectorEngine)
        assert isinstance(make_engine(MessageEngine, net), MessageEngine)
        inst = VectorEngine(net)
        assert make_engine(inst, net) is inst

    def test_make_engine_rejects_unknown(self):
        net = LinkNetwork(3, bandwidth=8)
        with pytest.raises(ModelError):
            make_engine("tachyon", net)
        with pytest.raises(ModelError):
            make_engine(42, net)

    def test_instance_must_match_network(self):
        a = LinkNetwork(3, bandwidth=8)
        b = LinkNetwork(3, bandwidth=8)
        with pytest.raises(ModelError):
            make_engine(VectorEngine(a), b)


@pytest.mark.parametrize("engine", ENGINE_NAMES)
class TestExchangeBatches:
    def test_accounting_matches_message_objects(self, engine):
        c = Cluster(k=3, bandwidth=8, seed=0, engine=engine)
        ref = Cluster(k=3, bandwidth=8, seed=0)
        out = ref.empty_outboxes()
        rows = [(0, 1, 6), (0, 2, 6), (2, 1, 10), (1, 1, 3)]
        for s, d, b in rows:
            out[s].append(Message(src=s, dst=d, kind="t", bits=b))
        ref.exchange(out)
        c.exchange_batches(
            [_batch([r[0] for r in rows], [r[1] for r in rows], [r[2] for r in rows])]
        )
        assert c.rounds == ref.rounds
        assert c.metrics.bits == ref.metrics.bits
        assert c.metrics.messages == ref.metrics.messages
        assert c.metrics.local_messages == ref.metrics.local_messages == 1

    def test_delivery_is_canonical_order(self, engine):
        c = Cluster(k=4, bandwidth=64, seed=0, engine=engine)
        # Emission order deliberately scrambled in src.
        b = _batch([2, 0, 2, 1, 0], [3, 3, 3, 3, 0], [4] * 5, u=[0, 1, 2, 3, 4])
        (d,) = c.exchange_batches([b])
        sl = d.machine_slice(3)
        assert d.src[sl].tolist() == [0, 1, 2, 2]
        # Same src keeps emission order (stable).
        assert d.columns["u"][sl].tolist() == [1, 3, 0, 2]
        assert d.for_machine(0)["u"].tolist() == [4]
        assert len(d) == 5

    def test_multiple_batches_share_one_phase(self, engine):
        c = Cluster(k=3, bandwidth=8, seed=0, engine=engine)
        a = _batch([0], [1], [6])
        b = _batch([0], [1], [6])
        c.exchange_batches([a, b])
        # One phase: 12 bits on link (0,1) -> ceil(12/8) = 2 rounds,
        # not 1 + 1 from two separate phases.
        assert c.metrics.phases == 1
        assert c.rounds == 2

    def test_empty_batches(self, engine):
        c = Cluster(k=3, bandwidth=8, seed=0, engine=engine)
        (d,) = c.exchange_batches([_batch([], [], [])])
        assert len(d) == 0
        assert d.offsets.tolist() == [0, 0, 0, 0]
        assert c.rounds == 0 and c.metrics.phases == 1

    def test_rejects_out_of_range_machines(self, engine):
        c = Cluster(k=3, bandwidth=8, seed=0, engine=engine)
        with pytest.raises(ModelError):
            c.exchange_batches([_batch([0], [3], [4])])
        with pytest.raises(ModelError):
            c.exchange_batches([_batch([-1], [0], [4])])

    def test_strict_mode_matches_phase_mode_with_packing(self, engine):
        rng = np.random.default_rng(3)
        src = rng.integers(0, 4, 30)
        dst = rng.integers(0, 4, 30)
        bits = rng.integers(1, 20, 30)
        strict = Cluster(k=4, bandwidth=7, seed=0, mode="strict", engine=engine)
        phase = Cluster(k=4, bandwidth=7, seed=0, mode="phase", engine=engine)
        strict.exchange_batches([_batch(src, dst, bits)])
        phase.exchange_batches([_batch(src, dst, bits)])
        assert strict.rounds == phase.rounds


class TestEngineEquivalence:
    def test_randomized_batches_identical_across_backends(self):
        rng = np.random.default_rng(7)
        for mode in ("phase", "strict"):
            for _ in range(20):
                k = int(rng.integers(2, 6))
                t = int(rng.integers(0, 50))
                src = rng.integers(0, k, t)
                dst = rng.integers(0, k, t)
                bits = rng.integers(1, 25, t)
                payload = rng.integers(0, 1000, t)
                results = {}
                for engine in ENGINE_NAMES:
                    c = Cluster(k=k, bandwidth=5, seed=0, mode=mode, engine=engine)
                    (d,) = c.exchange_batches([_batch(src, dst, bits, u=payload)])
                    results[engine] = (
                        c.rounds,
                        c.metrics.bits,
                        c.metrics.messages,
                        c.metrics.local_messages,
                        d.src.tolist(),
                        d.dst.tolist(),
                        d.columns["u"].tolist(),
                        d.offsets.tolist(),
                    )
                first = results[ENGINE_NAMES[0]]
                for engine in ENGINE_NAMES[1:]:
                    assert results[engine] == first


class TestBroadcast:
    def test_excludes_source_machine(self):
        # The src == dst exclusion edge case: no self-delivery, k - 1
        # copies, and no local message accounted.
        for engine in ENGINE_NAMES:
            c = Cluster(k=5, bandwidth=64, seed=0, engine=engine)
            inboxes = c.broadcast(2, kind="hello", payload=7, bits=4)
            assert inboxes[2] == []
            assert sum(len(b) for b in inboxes) == 4
            assert c.metrics.messages == 4
            assert c.metrics.local_messages == 0

    def test_rejects_nonpositive_bits(self):
        c = Cluster(k=3, bandwidth=8, seed=0)
        with pytest.raises(ModelError):
            c.broadcast(0, kind="b", payload=None, bits=0)
        with pytest.raises(ModelError):
            c.broadcast(0, kind="b", payload=None, bits=-3)


class TestRunDriver:
    def test_runs_object_driver_until_done(self):
        c = Cluster(k=3, bandwidth=8, seed=0)

        class Driver:
            def __init__(self):
                self.steps = 0

            def step(self, cluster, state):
                self.steps += 1
                cluster.broadcast(0, kind="tick", payload=None, bits=1)
                state.append(self.steps)
                return self.steps < 4

        driver = Driver()
        state = c.run_driver(driver, state=[])
        assert driver.steps == 4
        assert state == [1, 2, 3, 4]
        assert c.metrics.phases == 4

    def test_max_steps_caps_the_loop(self):
        c = Cluster(k=2, bandwidth=8, seed=0)
        calls = []
        with pytest.raises(ModelError):
            c.run_driver(lambda cluster, state: calls.append(1) or True, max_steps=3)
        assert len(calls) == 3
        assert c.last_driver_supersteps == 3

    def test_max_steps_partial_state_on_request(self):
        c = Cluster(k=2, bandwidth=8, seed=0)
        calls = []
        c.run_driver(
            lambda cluster, state: calls.append(1) or True,
            max_steps=3,
            on_exhaust="return",
        )
        assert len(calls) == 3

    def test_rejects_non_callable(self):
        c = Cluster(k=2, bandwidth=8, seed=0)
        with pytest.raises(ModelError):
            c.run_driver(object())
