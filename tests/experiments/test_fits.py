"""Unit tests for the power-law fitting helper."""

import numpy as np
import pytest

from repro.experiments.fits import fit_power_law


class TestFitPowerLaw:
    def test_recovers_exact_law(self):
        x = np.array([1, 2, 4, 8, 16], dtype=float)
        y = 3.5 * x**-2
        fit = fit_power_law(x, y)
        assert fit.exponent == pytest.approx(-2.0)
        assert fit.coefficient == pytest.approx(3.5)
        assert fit.r_squared == pytest.approx(1.0)

    def test_recovers_noisy_law(self):
        rng = np.random.default_rng(0)
        x = np.geomspace(1, 100, 20)
        y = 2.0 * x**1.5 * np.exp(0.05 * rng.standard_normal(20))
        fit = fit_power_law(x, y)
        assert fit.exponent == pytest.approx(1.5, abs=0.1)
        assert fit.r_squared > 0.98

    def test_predict_consistency(self):
        x = np.array([1.0, 2.0, 4.0])
        y = 5.0 * x**0.5
        fit = fit_power_law(x, y)
        assert np.allclose(fit.predict(x), y)

    def test_constant_data(self):
        fit = fit_power_law([1, 2, 4], [7, 7, 7])
        assert fit.exponent == pytest.approx(0.0, abs=1e-12)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [0, 1])
        with pytest.raises(ValueError):
            fit_power_law([-1, 2], [1, 1])

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2, 3], [1, 2])
