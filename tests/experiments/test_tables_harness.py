"""Unit tests for table rendering and the sweep harness."""

import pytest

from repro.experiments.harness import Sweep
from repro.experiments.tables import format_table


class TestFormatTable:
    def test_alignment_and_rule(self):
        out = format_table(["k", "rounds"], [[8, 120], [16, 30]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "k" in lines[0] and "rounds" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        # Columns right-aligned: the widths of all lines match.
        assert len({len(line) for line in lines}) == 1

    def test_float_formatting(self):
        out = format_table(["x"], [[0.00012345], [123456.0], [1.5]])
        assert "1.234e-04" in out or "1.235e-04" in out
        assert "1.235e+05" in out or "1.234e+05" in out

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestSweep:
    def test_add_and_column(self):
        s = Sweep("demo")
        s.add({"k": 8}, {"rounds": 100})
        s.add({"k": 16}, {"rounds": 25})
        assert s.column("k") == [8, 16]
        assert s.column("rounds") == [100, 25]

    def test_column_missing_key(self):
        s = Sweep("demo")
        s.add({"k": 8}, {"rounds": 100})
        with pytest.raises(KeyError):
            s.column("nope")

    def test_render_contains_values(self):
        s = Sweep("demo")
        s.add({"k": 8}, {"rounds": 100})
        out = s.render()
        assert "demo" in out and "100" in out and "k" in out

    def test_render_empty(self):
        assert "no rows" in Sweep("empty").render()
