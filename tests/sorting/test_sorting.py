"""Tests for distributed sample sort (§1.3 extension)."""

import numpy as np
import pytest

import repro
from repro.errors import AlgorithmError


class TestCorrectness:
    @pytest.mark.parametrize("n,k", [(100, 4), (1000, 8), (5000, 16), (50, 2)])
    def test_output_globally_sorted(self, n, k):
        values = np.random.default_rng(n + k).random(n)
        res = repro.distributed_sort(values, k=k, seed=1)
        out = res.concatenated()
        assert out.size == n
        assert np.all(np.diff(out) >= 0)
        assert np.array_equal(np.sort(out), np.sort(values))

    def test_blocks_are_contiguous_rank_ranges(self):
        values = np.random.default_rng(0).random(2000)
        res = repro.distributed_sort(values, k=8, seed=2)
        expected = np.sort(values)
        start = 0
        for block in res.blocks:
            assert np.array_equal(np.sort(block), expected[start : start + block.size])
            start += block.size

    def test_handles_duplicates(self):
        values = np.random.default_rng(1).integers(0, 10, size=3000).astype(float)
        res = repro.distributed_sort(values, k=8, seed=3)
        out = res.concatenated()
        assert np.array_equal(out, np.sort(values))

    def test_handles_constant_input(self):
        values = np.full(500, 3.14)
        res = repro.distributed_sort(values, k=4, seed=4)
        assert np.array_equal(res.concatenated(), values)

    def test_handles_integers(self):
        values = np.random.default_rng(2).integers(-1000, 1000, size=1000)
        res = repro.distributed_sort(values, k=4, seed=5)
        assert np.array_equal(res.concatenated(), np.sort(values))

    def test_explicit_assignment(self):
        values = np.random.default_rng(3).random(100)
        assignment = np.arange(100) % 4
        res = repro.distributed_sort(values, k=4, seed=6, assignment=assignment)
        assert np.array_equal(res.concatenated(), np.sort(values))

    def test_tiny_input(self):
        res = repro.distributed_sort(np.array([3.0, 1.0, 2.0]), k=2, seed=7)
        assert res.concatenated().tolist() == [1.0, 2.0, 3.0]

    def test_rejects_empty(self):
        with pytest.raises(AlgorithmError):
            repro.distributed_sort(np.zeros(0), k=2)

    def test_rejects_bad_assignment(self):
        with pytest.raises(AlgorithmError):
            repro.distributed_sort(np.ones(5), k=2, assignment=np.array([0, 1, 2, 0, 1]))


class TestBalanceAndCost:
    def test_blocks_balanced_whp(self):
        values = np.random.default_rng(4).random(20_000)
        res = repro.distributed_sort(values, k=16, seed=8)
        assert res.max_block_imbalance() < 2.0

    def test_rounds_scale_inverse_k_squared(self):
        values = np.random.default_rng(5).random(40_000)
        B = 64
        r4 = repro.distributed_sort(values, k=4, seed=9, bandwidth=B).rounds
        r16 = repro.distributed_sort(values, k=16, seed=9, bandwidth=B).rounds
        # Ideal 16x; allow slack for splitter/sample overhead.
        assert r4 > 8 * r16

    def test_deterministic_given_seed(self):
        values = np.random.default_rng(6).random(1000)
        a = repro.distributed_sort(values, k=8, seed=10)
        b = repro.distributed_sort(values, k=8, seed=10)
        assert all(np.array_equal(x, y) for x, y in zip(a.blocks, b.blocks))
        assert a.rounds == b.rounds

    def test_metrics_consistent(self):
        values = np.random.default_rng(7).random(1000)
        res = repro.distributed_sort(values, k=8, seed=11)
        res.metrics.check_conservation()
        assert res.metrics.phases == 3  # sample, splitters, redistribute
