"""Unit tests for the Lemma-4 closed forms."""

import pytest

from repro.core.pagerank import lemma4
from repro.errors import AlgorithmError


class TestValues:
    def test_b0_formula(self):
        assert lemma4.value_b0(0.2, 100) == pytest.approx(0.2 * (2.5 - 0.4 + 0.02) / 100)

    def test_b1_dominates_paper_bound(self):
        for eps in (0.05, 0.2, 0.5, 0.9):
            assert lemma4.value_b1(eps, 100) >= lemma4.value_b1_paper_bound(eps, 100)

    def test_separation_strictly_above_one(self):
        for eps in (0.01, 0.15, 0.5, 0.99):
            assert lemma4.separation_ratio(eps) > 1.0

    def test_separation_grows_as_eps_shrinks(self):
        assert lemma4.separation_ratio(0.05) > lemma4.separation_ratio(0.5)

    def test_separation_consistent_with_values(self):
        eps, n = 0.3, 50
        assert lemma4.separation_ratio(eps) == pytest.approx(
            lemma4.value_b1(eps, n) / lemma4.value_b0(eps, n)
        )

    def test_max_safe_delta_separates_intervals(self):
        eps, n = 0.2, 100
        d = lemma4.max_safe_delta(eps)
        v0, v1 = lemma4.value_b0(eps, n), lemma4.value_b1(eps, n)
        # delta-balls around the two values stay disjoint.
        assert v0 * (1 + d) < v1 * (1 - d) + 1e-15

    def test_rejects_bad_eps(self):
        with pytest.raises(AlgorithmError):
            lemma4.value_b0(1.0, 10)
        with pytest.raises(AlgorithmError):
            lemma4.separation_ratio(0.0)
