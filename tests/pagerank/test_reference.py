"""Unit tests for the sequential PageRank references."""

import numpy as np
import pytest

import networkx as nx

import repro
from repro.core.pagerank.reference import pagerank_teleport, pagerank_walk_series, push_step
from repro.errors import AlgorithmError
from repro.graphs.graph import Graph


class TestPushStep:
    def test_uniform_split_over_out_neighbors(self):
        g = Graph(n=3, edges=[(0, 1), (0, 2)], directed=True)
        y = push_step(g, np.array([1.0, 0.0, 0.0]))
        assert y.tolist() == [0.0, 0.5, 0.5]

    def test_dangling_mass_absorbed(self):
        g = Graph(n=2, edges=[(0, 1)], directed=True)
        y = push_step(g, np.array([0.0, 1.0]))
        assert y.sum() == 0.0

    def test_mass_conserved_without_dangling(self):
        g = repro.cycle_graph(6, directed=True)
        x = np.random.default_rng(0).random(6)
        assert push_step(g, x).sum() == pytest.approx(x.sum())


class TestWalkSeries:
    def test_sums_to_one_without_dangling(self):
        g = repro.cycle_graph(8, directed=True)
        pi = pagerank_walk_series(g, eps=0.2)
        assert pi.sum() == pytest.approx(1.0)

    def test_below_one_with_dangling(self):
        g = Graph(n=3, edges=[(0, 1), (1, 2)], directed=True)
        pi = pagerank_walk_series(g, eps=0.2)
        assert pi.sum() < 1.0

    def test_symmetric_graph_uniform(self):
        g = repro.cycle_graph(10)
        pi = pagerank_walk_series(g, eps=0.3)
        assert np.allclose(pi, 0.1)

    def test_closed_form_two_cycle(self):
        # Directed 2-cycle: pi(v) = (eps/2) * sum_j beta^j = 1/2 each.
        g = Graph(n=2, edges=[(0, 1), (1, 0)], directed=True)
        pi = pagerank_walk_series(g, eps=0.4)
        assert np.allclose(pi, 0.5)

    def test_matches_linear_solver(self):
        # pi^T = (eps/n) 1^T (I - beta P)^{-1} on a random digraph.
        g = repro.gnp_random_graph(30, 0.2, seed=1, directed=True)
        eps, beta = 0.25, 0.75
        outdeg = g.out_degrees().astype(float)
        P = np.zeros((30, 30))
        for v in range(30):
            for w in g.out_neighbors(v):
                P[v, w] = 1.0 / outdeg[v]
        expected = (eps / 30) * np.linalg.solve((np.eye(30) - beta * P).T, np.ones(30))
        pi = pagerank_walk_series(g, eps=eps)
        assert np.allclose(pi, expected, atol=1e-10)

    def test_rejects_bad_eps(self):
        g = repro.cycle_graph(4)
        with pytest.raises(AlgorithmError):
            pagerank_walk_series(g, eps=0.0)


class TestTeleport:
    def test_probability_vector(self):
        g = repro.gnp_random_graph(40, 0.1, seed=2, directed=True)
        pi = pagerank_teleport(g, eps=0.15)
        assert pi.sum() == pytest.approx(1.0)
        assert np.all(pi > 0)

    def test_matches_networkx(self):
        g = repro.gnp_random_graph(40, 0.15, seed=3, directed=True)
        pi = pagerank_teleport(g, eps=0.15)
        nx_pi = nx.pagerank(g.to_networkx(), alpha=0.85, tol=1e-12)
        expected = np.array([nx_pi[v] for v in range(40)])
        assert np.allclose(pi, expected, atol=1e-8)

    def test_agrees_with_walk_series_when_no_dangling(self):
        g = repro.cycle_graph(12, directed=True)
        a = pagerank_teleport(g, eps=0.2)
        b = pagerank_walk_series(g, eps=0.2)
        assert np.allclose(a, b, atol=1e-9)

    def test_star_center_dominates(self):
        g = repro.star_graph(20)
        pi = pagerank_teleport(g, eps=0.15)
        assert pi[0] > 5 * pi[1:].max()
