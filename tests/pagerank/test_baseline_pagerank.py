"""Tests for the Õ(n/k) per-edge-forwarding PageRank baseline."""

import numpy as np

import repro


class TestBaselineCorrectness:
    def test_approximates_walk_series(self):
        g = repro.gnp_random_graph(100, 0.08, seed=1)
        ref = repro.pagerank_walk_series(g, eps=0.25)
        res = repro.baseline_pagerank(g, k=6, eps=0.25, seed=2, c=80)
        assert res.linf_relative_error(ref) < 0.25

    def test_handles_dangling(self):
        inst = repro.pagerank_lowerbound_graph(q=30, seed=3)
        ref = inst.analytic_pagerank(0.25)
        res = repro.baseline_pagerank(inst.graph, k=4, eps=0.25, seed=4, c=80)
        assert res.linf_relative_error(ref) < 0.3

    def test_deterministic_given_seed(self):
        g = repro.gnp_random_graph(60, 0.1, seed=5)
        a = repro.baseline_pagerank(g, k=4, seed=6, c=20)
        b = repro.baseline_pagerank(g, k=4, seed=6, c=20)
        assert np.array_equal(a.estimates, b.estimates)

    def test_same_estimator_distribution_as_algorithm1(self):
        # Means over seeds should agree: the protocols differ only in the
        # message pattern, not the walk process.
        g = repro.gnp_random_graph(50, 0.15, seed=7)
        ref = repro.pagerank_walk_series(g, eps=0.3)
        base = np.zeros(g.n)
        algo = np.zeros(g.n)
        runs = 6
        for s in range(runs):
            base += repro.baseline_pagerank(g, k=4, eps=0.3, seed=200 + s, c=30).estimates
            algo += repro.distributed_pagerank(g, k=4, eps=0.3, seed=300 + s, c=30).estimates
        assert np.abs(base / runs - ref).max() < 0.15 * ref.max() + np.abs(
            algo / runs - ref
        ).max()


class TestBaselineCost:
    def test_algorithm1_beats_baseline_on_star(self):
        # The paper's motivating example: the hub's token traffic costs
        # the baseline Θ̃(n/k) rounds per iteration.
        g = repro.star_graph(800)
        k, B = 8, 16
        base = repro.baseline_pagerank(g, k=k, seed=8, c=8, bandwidth=B)
        algo = repro.distributed_pagerank(g, k=k, seed=8, c=8, bandwidth=B)
        assert algo.token_rounds() * 3 < base.token_rounds()

    def test_algorithm1_beats_baseline_on_lb_graph(self):
        # On H, the sink w concentrates Θ(n/4) edge messages per early
        # iteration in the baseline.
        inst = repro.pagerank_lowerbound_graph(q=400, seed=9)
        k, B = 8, 16
        base = repro.baseline_pagerank(inst.graph, k=k, seed=10, c=8, bandwidth=B)
        algo = repro.distributed_pagerank(inst.graph, k=k, seed=10, c=8, bandwidth=B)
        assert algo.token_rounds() < base.token_rounds()

    def test_baseline_rounds_scale_inverse_k(self):
        g = repro.star_graph(600)
        B = 16
        r4 = repro.baseline_pagerank(g, k=4, seed=11, c=8, bandwidth=B).token_rounds()
        r16 = repro.baseline_pagerank(g, k=16, seed=11, c=8, bandwidth=B).token_rounds()
        # Θ(n/k): factor ~4, clearly below quadratic improvement.
        assert 2 < r4 / r16 < 10

    def test_metrics_consistent(self):
        g = repro.gnp_random_graph(60, 0.1, seed=12)
        res = repro.baseline_pagerank(g, k=4, seed=13, c=10)
        res.metrics.check_conservation()
