"""Tests for Algorithm 1 (distributed PageRank)."""

import numpy as np
import pytest

import repro
from repro.errors import AlgorithmError, PartitionError
from repro.kmachine.partition import random_vertex_partition


class TestCorrectness:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: repro.gnp_random_graph(120, 0.08, seed=1),
            lambda: repro.cycle_graph(100),
            lambda: repro.star_graph(100),
        ],
        ids=["gnp", "cycle", "star"],
    )
    def test_approximates_walk_series(self, maker):
        g = maker()
        ref = repro.pagerank_walk_series(g, eps=0.25)
        res = repro.distributed_pagerank(g, k=6, eps=0.25, seed=2, c=80)
        # Monte-Carlo estimator: generous delta on small graphs.
        assert res.linf_relative_error(ref) < 0.25

    def test_directed_graph_with_dangling(self):
        inst = repro.pagerank_lowerbound_graph(q=40, seed=3)
        ref = inst.analytic_pagerank(0.25)
        res = repro.distributed_pagerank(inst.graph, k=4, eps=0.25, seed=4, c=80)
        assert res.linf_relative_error(ref) < 0.3

    def test_estimates_close_in_l1(self):
        g = repro.gnp_random_graph(150, 0.06, seed=5)
        ref = repro.pagerank_walk_series(g, eps=0.2)
        res = repro.distributed_pagerank(g, k=8, eps=0.2, seed=6, c=80)
        assert res.l1_error(ref) < 0.08

    def test_recovers_lemma4_bits(self):
        # Functional end-to-end test of the lower-bound reconstruction:
        # a delta-approximation reveals every b_i.
        inst = repro.pagerank_lowerbound_graph(q=60, seed=7)
        res = repro.distributed_pagerank(inst.graph, k=6, eps=0.25, seed=8, c=120)
        assert np.array_equal(inst.infer_b(res.estimates, 0.25), inst.b)

    def test_total_mass_close_to_reference_total(self):
        g = repro.gnp_random_graph(100, 0.1, seed=9)
        ref = repro.pagerank_walk_series(g, eps=0.3)
        res = repro.distributed_pagerank(g, k=4, eps=0.3, seed=10, c=60)
        assert res.estimates.sum() == pytest.approx(ref.sum(), rel=0.05)

    def test_unbiased_over_seeds(self):
        # Averaging estimates across seeds converges to the reference.
        g = repro.gnp_random_graph(60, 0.15, seed=11)
        ref = repro.pagerank_walk_series(g, eps=0.3)
        acc = np.zeros(g.n)
        runs = 8
        for s in range(runs):
            acc += repro.distributed_pagerank(g, k=4, eps=0.3, seed=100 + s, c=30).estimates
        assert np.abs(acc / runs - ref).max() / ref.max() < 0.1


class TestDeterminismAndValidation:
    def test_seeded_runs_identical(self):
        g = repro.gnp_random_graph(80, 0.1, seed=12)
        a = repro.distributed_pagerank(g, k=4, eps=0.25, seed=13, c=20)
        b = repro.distributed_pagerank(g, k=4, eps=0.25, seed=13, c=20)
        assert np.array_equal(a.estimates, b.estimates)
        assert a.rounds == b.rounds

    def test_different_seeds_differ(self):
        g = repro.gnp_random_graph(80, 0.1, seed=12)
        a = repro.distributed_pagerank(g, k=4, eps=0.25, seed=13, c=20)
        b = repro.distributed_pagerank(g, k=4, eps=0.25, seed=14, c=20)
        assert not np.array_equal(a.estimates, b.estimates)

    def test_rejects_bad_eps(self):
        g = repro.cycle_graph(10)
        with pytest.raises(AlgorithmError):
            repro.distributed_pagerank(g, k=4, eps=1.5)

    def test_rejects_mismatched_partition(self):
        g = repro.cycle_graph(10)
        p = random_vertex_partition(11, 4, seed=0)
        with pytest.raises(PartitionError):
            repro.distributed_pagerank(g, k=4, partition=p)

    def test_accepts_explicit_partition(self):
        g = repro.cycle_graph(30)
        p = random_vertex_partition(30, 4, seed=1)
        res = repro.distributed_pagerank(g, k=4, partition=p, seed=2, c=10)
        assert res.estimates.shape == (30,)

    def test_metrics_consistency(self):
        g = repro.gnp_random_graph(60, 0.1, seed=15)
        res = repro.distributed_pagerank(g, k=4, seed=16, c=10)
        res.metrics.check_conservation()
        assert res.metrics.rounds == res.rounds
        assert res.iterations == len(res.iteration_stats)

    def test_tokens_eventually_die(self):
        g = repro.cycle_graph(40)
        res = repro.distributed_pagerank(g, k=4, eps=0.3, seed=17, c=10)
        assert res.iteration_stats[-1].live_tokens == 0


class TestCommunicationBehaviour:
    def test_rounds_decrease_superlinearly_in_k(self):
        # Theorem 4: rounds scale superlinearly in k (~1/k² asymptotically).
        # Quadrupling k must cut the first (fully-loaded) iteration's
        # rounds by clearly more than 4x.  A small token factor keeps the
        # per-machine destination count below the n-saturation point so the
        # scaling is visible at these small k (see bench_pagerank_rounds
        # for the asymptotic-fit version).
        g = repro.gnp_random_graph(2000, 0.008, seed=18)
        r8 = repro.distributed_pagerank(g, k=8, seed=19, c=0.25, bandwidth=16)
        r32 = repro.distributed_pagerank(g, k=32, seed=19, c=0.25, bandwidth=16)
        first8 = r8.iteration_stats[0].rounds
        first32 = r32.iteration_stats[0].rounds
        assert first8 > 5.5 * first32  # linear scaling would give 4x
        assert r8.token_rounds() > 3 * r32.token_rounds()

    def test_heavy_path_tames_star_congestion(self):
        # Ablation (Lemma 12's point): with the heavy path disabled, the
        # hub's token fan-out floods its home machine's links.
        g = repro.star_graph(800)
        k, B = 8, 16
        with_heavy = repro.distributed_pagerank(
            g, k=k, seed=20, c=8, bandwidth=B, enable_heavy_path=True
        )
        without = repro.distributed_pagerank(
            g, k=k, seed=20, c=8, bandwidth=B, enable_heavy_path=False
        )
        assert with_heavy.token_rounds() < without.token_rounds()

    def test_lemma12_per_machine_send_load(self):
        # No machine sends more than O~(n/k) messages in any iteration.
        g = repro.gnp_random_graph(600, 0.02, seed=21)
        k = 8
        res = repro.distributed_pagerank(g, k=k, seed=22, c=8)
        n = g.n
        bound = 8 * (n / k) * np.log2(n)
        for stats in res.iteration_stats:
            assert stats.max_machine_sent <= bound

    def test_control_phases_labelled(self):
        g = repro.cycle_graph(30)
        res = repro.distributed_pagerank(g, k=4, seed=23, c=4)
        labels = {p.label for p in res.metrics.phase_log}
        assert any(lbl.startswith("pagerank/control") for lbl in labels)
        assert any(lbl.startswith("pagerank/tokens") for lbl in labels)
        assert res.token_rounds() <= res.rounds

    def test_estimator_normalization_uses_t0(self):
        g = repro.cycle_graph(20)
        res = repro.distributed_pagerank(g, k=4, seed=24, c=10)
        # psi >= t0 everywhere, so every estimate is >= eps * t0/(n t0).
        assert np.all(res.estimates >= res.eps / g.n - 1e-12)
