"""Unit tests for the vectorized token kinematics."""

import numpy as np
import pytest

import repro
from repro.core.pagerank import tokens as tk


class TestTerminate:
    def test_eps_one_kills_everything(self):
        rng = np.random.default_rng(0)
        out = tk.terminate_tokens(np.array([5, 10, 0]), 1.0, rng)
        assert out.tolist() == [0, 0, 0]

    def test_eps_zero_keeps_everything(self):
        rng = np.random.default_rng(0)
        counts = np.array([5, 10, 0])
        out = tk.terminate_tokens(counts, 1e-12, rng)
        assert np.array_equal(out, counts)

    def test_expected_survival_rate(self):
        rng = np.random.default_rng(1)
        counts = np.full(1000, 100)
        out = tk.terminate_tokens(counts, 0.25, rng)
        assert out.sum() == pytest.approx(0.75 * counts.sum(), rel=0.02)

    def test_never_negative(self):
        rng = np.random.default_rng(2)
        out = tk.terminate_tokens(np.array([1, 2, 3]), 0.9, rng)
        assert np.all(out >= 0)

    def test_empty_input(self):
        rng = np.random.default_rng(3)
        assert tk.terminate_tokens(np.zeros(0, dtype=np.int64), 0.5, rng).size == 0


class TestMoveLight:
    def test_token_conservation(self):
        g = repro.gnp_random_graph(30, 0.2, seed=0)
        rng = np.random.default_rng(4)
        verts = np.arange(30)
        counts = np.full(30, 7)
        dv, dc = tk.move_light_tokens(verts, counts, g.indptr, g.indices, rng)
        assert dc.sum() == 7 * (g.degrees() > 0).sum()

    def test_tokens_land_on_neighbors(self):
        g = repro.star_graph(10)
        rng = np.random.default_rng(5)
        dv, dc = tk.move_light_tokens(
            np.array([0]), np.array([100]), g.indptr, g.indices, rng
        )
        assert set(dv.tolist()) <= set(range(1, 10))
        assert dc.sum() == 100

    def test_degree_zero_absorbs(self):
        g = repro.empty_graph(5)
        rng = np.random.default_rng(6)
        dv, dc = tk.move_light_tokens(np.array([0, 1]), np.array([3, 4]), g.indptr, g.indices, rng)
        assert dv.size == 0 and dc.size == 0

    def test_aggregation_across_sources(self):
        # Two leaves of a star both send to the hub: one aggregated entry.
        g = repro.star_graph(5)
        rng = np.random.default_rng(7)
        dv, dc = tk.move_light_tokens(
            np.array([1, 2]), np.array([4, 6]), g.indptr, g.indices, rng
        )
        assert dv.tolist() == [0]
        assert dc.tolist() == [10]

    def test_roughly_uniform_over_neighbors(self):
        g = repro.complete_graph(5)
        rng = np.random.default_rng(8)
        dv, dc = tk.move_light_tokens(np.array([0]), np.array([40_000]), g.indptr, g.indices, rng)
        assert np.allclose(dc, 10_000, rtol=0.1)


class TestHeavyPath:
    def test_machine_distribution_proportional_to_neighbors(self):
        g = repro.star_graph(41)  # hub 0 with 40 leaves
        home = np.zeros(41, dtype=np.int64)
        home[1:21] = 1  # 20 leaves on machine 1
        home[21:31] = 2  # 10 leaves on machine 2
        home[31:41] = 3  # 10 leaves on machine 3
        rng = np.random.default_rng(9)
        beta = tk.heavy_machine_counts(0, 40_000, g.indptr, g.indices, home, 4, rng)
        assert beta.sum() == 40_000
        assert beta[1] == pytest.approx(20_000, rel=0.05)
        assert beta[2] == pytest.approx(10_000, rel=0.1)
        assert beta[0] == 0  # machine 0 hosts no neighbor of the hub

    def test_zero_tokens(self):
        g = repro.star_graph(5)
        home = np.zeros(5, dtype=np.int64)
        rng = np.random.default_rng(10)
        beta = tk.heavy_machine_counts(0, 0, g.indptr, g.indices, home, 2, rng)
        assert beta.sum() == 0

    def test_split_among_local_neighbors_conserves(self):
        rng = np.random.default_rng(11)
        dv, dc = tk.split_tokens_among_local_neighbors(0, 1000, np.array([3, 5, 7]), rng)
        assert dc.sum() == 1000
        assert set(dv.tolist()) <= {3, 5, 7}

    def test_split_uniform(self):
        rng = np.random.default_rng(12)
        dv, dc = tk.split_tokens_among_local_neighbors(0, 90_000, np.array([1, 2, 3]), rng)
        assert np.allclose(dc, 30_000, rtol=0.05)

    def test_split_raises_without_local_neighbors(self):
        rng = np.random.default_rng(13)
        with pytest.raises(ValueError):
            tk.split_tokens_among_local_neighbors(0, 10, np.array([], dtype=np.int64), rng)
