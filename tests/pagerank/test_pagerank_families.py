"""PageRank across graph families: correctness and behavioral checks."""

import numpy as np
import pytest

import repro
from repro.graphs.generators import barbell_graph, grid_graph, random_bipartite_graph


@pytest.mark.parametrize(
    "maker,name",
    [
        (lambda: grid_graph(10, 10), "grid"),
        (lambda: barbell_graph(12, bridge_length=4), "barbell"),
        (lambda: random_bipartite_graph(40, 60, 0.08, seed=1), "bipartite"),
        (lambda: repro.chung_lu_graph(120, avg_degree=8, seed=2), "powerlaw"),
        (lambda: repro.random_regularish_graph(100, 6, seed=3), "regularish"),
    ],
    ids=["grid", "barbell", "bipartite", "powerlaw", "regularish"],
)
class TestFamilies:
    def test_distributed_close_to_reference(self, maker, name):
        g = maker()
        ref = repro.pagerank_walk_series(g, eps=0.25)
        res = repro.distributed_pagerank(g, k=6, eps=0.25, seed=4, c=60)
        assert res.l1_error(ref) < 0.12

    def test_top_vertices_recovered(self, maker, name):
        g = maker()
        ref = repro.pagerank_walk_series(g, eps=0.25)
        if ref.max() / ref.min() < 2.5:
            pytest.skip("near-uniform PageRank: top-k is tie-dominated")
        res = repro.distributed_pagerank(g, k=6, eps=0.25, seed=5, c=60)
        top_ref = set(np.argsort(ref)[::-1][:5].tolist())
        top_est = set(np.argsort(res.estimates)[::-1][:15].tolist())
        assert len(top_ref & top_est) >= 4


class TestStructuralExpectations:
    def test_grid_nearly_uniform(self):
        g = grid_graph(12, 12)
        ref = repro.pagerank_walk_series(g, eps=0.2)
        # Degree range is 2..4, so PageRank spread is small.
        assert ref.max() / ref.min() < 2.5

    def test_barbell_bridge_visibility(self):
        g = barbell_graph(10, bridge_length=5)
        ref = repro.pagerank_walk_series(g, eps=0.15)
        # Clique members outrank the middle bridge vertices.
        bridge_mid = 2 * 10 + 1
        assert ref[:10].mean() > ref[bridge_mid]

    def test_bipartite_side_masses_proportionalish(self):
        g = random_bipartite_graph(30, 90, 0.15, seed=6)
        ref = repro.pagerank_teleport(g, eps=0.2)
        left, right = ref[:30].sum(), ref[30:].sum()
        # Total side mass splits roughly with side sizes' edge mass; just
        # check both sides carry real weight.
        assert 0.1 < left < 0.9
        assert left + right == pytest.approx(1.0)

    def test_eps_one_half_decays_fast(self):
        g = grid_graph(8, 8)
        res = repro.distributed_pagerank(g, k=4, eps=0.5, seed=7, c=10)
        small = repro.distributed_pagerank(g, k=4, eps=0.1, seed=7, c=10)
        assert res.iterations < small.iterations

    def test_directed_lowerbound_family(self):
        inst = repro.pagerank_lowerbound_graph(q=50, seed=8)
        ref = inst.analytic_pagerank(0.2)
        res = repro.distributed_pagerank(inst.graph, k=4, eps=0.2, seed=9, c=60)
        # w is the highest-PageRank vertex in both.
        assert int(np.argmax(ref)) == inst.w_id
        assert int(np.argmax(res.estimates)) == inst.w_id
