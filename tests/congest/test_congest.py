"""Tests for the CONGEST substrate, CONGEST PageRank, and the Conversion
Theorem replay."""

import numpy as np
import pytest

import repro
from repro.congest import CongestNetwork, congest_pagerank, convert_execution
from repro.errors import ModelError
from repro.kmachine.partition import random_vertex_partition


class TestCongestNetwork:
    def test_valid_round_recorded(self):
        g = repro.cycle_graph(5)
        net = CongestNetwork(g, bandwidth=8)
        net.round(np.array([0, 1]), np.array([1, 2]), np.array([4, 4]))
        assert net.num_rounds == 1
        assert net.execution.total_messages == 2
        assert net.execution.total_bits == 8

    def test_rejects_non_edge(self):
        g = repro.cycle_graph(5)
        net = CongestNetwork(g, bandwidth=8)
        with pytest.raises(ModelError, match="not an edge"):
            net.round(np.array([0]), np.array([2]), np.array([1]))

    def test_rejects_oversized_message(self):
        g = repro.cycle_graph(5)
        net = CongestNetwork(g, bandwidth=8)
        with pytest.raises(ModelError, match="at most B"):
            net.round(np.array([0]), np.array([1]), np.array([9]))

    def test_rejects_duplicate_edge_use(self):
        g = repro.cycle_graph(5)
        net = CongestNetwork(g, bandwidth=8)
        with pytest.raises(ModelError, match="one message per edge"):
            net.round(np.array([0, 0]), np.array([1, 1]), np.array([1, 1]))

    def test_directed_graph_respects_orientation(self):
        g = repro.path_graph(3, directed=True)
        net = CongestNetwork(g, bandwidth=8)
        net.round(np.array([0]), np.array([1]), np.array([1]))
        with pytest.raises(ModelError, match="not an edge"):
            net.round(np.array([1]), np.array([0]), np.array([1]))

    def test_empty_round_allowed(self):
        g = repro.cycle_graph(4)
        net = CongestNetwork(g, bandwidth=8)
        net.round(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
        assert net.num_rounds == 1


class TestCongestPageRank:
    def test_approximates_reference(self):
        g = repro.gnp_random_graph(100, 0.08, seed=1)
        ref = repro.pagerank_walk_series(g, eps=0.25)
        est, execution = congest_pagerank(g, eps=0.25, c=80, seed=2)
        assert np.abs(est - ref).max() / ref.max() < 0.3
        assert execution.num_rounds > 0

    def test_round_count_logarithmic(self):
        g = repro.gnp_random_graph(200, 0.05, seed=3)
        _, execution = congest_pagerank(g, eps=0.3, c=8, seed=4)
        # O(log n / eps) rounds: far below n.
        assert execution.num_rounds < 120

    def test_execution_messages_bounded_by_edges(self):
        g = repro.gnp_random_graph(60, 0.15, seed=5)
        _, execution = congest_pagerank(g, eps=0.3, c=8, seed=6)
        for traffic in execution.rounds:
            assert traffic.src.size <= 2 * g.m  # one per edge direction

    def test_deterministic_given_seed(self):
        g = repro.gnp_random_graph(50, 0.1, seed=7)
        a, ea = congest_pagerank(g, seed=8, c=10)
        b, eb = congest_pagerank(g, seed=8, c=10)
        assert np.array_equal(a, b)
        assert ea.num_rounds == eb.num_rounds


class TestConversionTheorem:
    def test_conversion_preserves_message_totals(self):
        g = repro.gnp_random_graph(80, 0.1, seed=9)
        _, execution = congest_pagerank(g, seed=10, c=8)
        p = random_vertex_partition(g.n, 8, seed=11)
        metrics = convert_execution(execution, p, k=8, bandwidth=16)
        assert metrics.messages + metrics.local_messages == execution.total_messages
        assert metrics.phases == execution.num_rounds

    def test_conversion_rounds_at_least_congest_rounds(self):
        # Each non-empty CONGEST round costs >= 1 k-machine round.
        g = repro.gnp_random_graph(80, 0.1, seed=12)
        _, execution = congest_pagerank(g, seed=13, c=8)
        p = random_vertex_partition(g.n, 8, seed=14)
        metrics = convert_execution(execution, p, k=8, bandwidth=10**9)
        nonempty = sum(1 for t in execution.rounds if t.src.size)
        # A round whose traffic happens to be machine-local costs 0.
        assert nonempty - 3 <= metrics.rounds <= nonempty

    def test_star_conversion_congests(self):
        # The §3.1 story: on a star, conversion costs Θ(n/k) per early
        # round (the hub's n in-edges all land on one machine), while
        # Algorithm 1's cross-source count aggregation sends one message
        # per machine.  The separation factor is ~k/log n, so it needs
        # k >> log n and a small token count (leaves light).
        g = repro.star_graph(4800)
        B, k = 16, 64
        _, execution = congest_pagerank(g, seed=15, c=1, bandwidth=B)
        p = random_vertex_partition(g.n, k, seed=16)
        converted = convert_execution(execution, p, k=k, bandwidth=B)
        direct = repro.distributed_pagerank(
            g, k=k, seed=15, c=1, bandwidth=B, partition=p
        )
        assert direct.token_rounds() * 3 < converted.rounds

    def test_rejects_mismatched_partition(self):
        g = repro.cycle_graph(10)
        _, execution = congest_pagerank(g, seed=17, c=4)
        p = random_vertex_partition(11, 4, seed=18)
        with pytest.raises(ModelError):
            convert_execution(execution, p, k=4)
        p2 = random_vertex_partition(10, 5, seed=19)
        with pytest.raises(ModelError):
            convert_execution(execution, p2, k=4)


class TestConnectivity:
    def test_components_match_networkx(self):
        import networkx as nx
        from repro.core.connectivity import connected_components_distributed

        g = repro.Graph(n=12, edges=[(0, 1), (1, 2), (3, 4), (5, 6), (6, 7), (7, 5)])
        res = connected_components_distributed(g, k=4, seed=0)
        nxg = g.to_networkx()
        assert res.num_components == nx.number_connected_components(nxg)
        for comp in nx.connected_components(nxg):
            labels = {int(res.labels[v]) for v in comp}
            assert len(labels) == 1
            assert min(comp) in labels  # canonical: min vertex id

    def test_connected_random_graph(self):
        from repro.core.connectivity import connected_components_distributed

        g = repro.gnp_random_graph(100, 0.1, seed=1)
        res = connected_components_distributed(g, k=8, seed=2)
        import networkx as nx

        assert res.num_components == nx.number_connected_components(g.to_networkx())
        assert res.spanning_forest.shape[0] == g.n - res.num_components

    def test_same_component_queries(self):
        from repro.core.connectivity import connected_components_distributed

        g = repro.Graph(n=5, edges=[(0, 1), (2, 3)])
        res = connected_components_distributed(g, k=2, seed=3)
        assert res.same_component(0, 1)
        assert not res.same_component(1, 2)
        assert not res.is_connected()


class TestPersonalizedPageRank:
    def test_matches_personalized_reference(self):
        g = repro.gnp_random_graph(80, 0.1, seed=20)
        sources = np.array([0, 5, 9])
        ref = repro.pagerank_walk_series(g, eps=0.3, sources=sources)
        res = repro.distributed_pagerank(
            g, k=4, eps=0.3, seed=21, c=300, sources=sources
        )
        # Monte-Carlo noise is relatively large on tiny masses: compare
        # only where the reference carries real weight.
        mask = ref > ref.max() / 10
        err = np.abs(res.estimates - ref)[mask] / ref[mask]
        assert err.max() < 0.4

    def test_mass_concentrates_near_sources(self):
        g = repro.path_graph(60)
        res = repro.distributed_pagerank(
            g, k=4, eps=0.3, seed=22, c=60, sources=np.array([0])
        )
        assert res.estimates[:5].sum() > res.estimates[30:].sum()

    def test_rejects_bad_sources(self):
        g = repro.cycle_graph(10)
        with pytest.raises(Exception):
            repro.distributed_pagerank(g, k=4, sources=np.array([10]))
        with pytest.raises(Exception):
            repro.distributed_pagerank(g, k=4, sources=np.array([1, 1]))

    def test_reference_personalized_sums(self):
        g = repro.cycle_graph(20, directed=True)
        pr = repro.pagerank_walk_series(g, eps=0.2, sources=np.array([3]))
        assert pr.sum() == pytest.approx(1.0)
        assert pr[3] == pr.max()
