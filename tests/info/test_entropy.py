"""Unit tests for entropy / mutual information."""

import numpy as np
import pytest

from repro.info.entropy import (
    binary_entropy,
    conditional_entropy,
    entropy,
    joint_entropy,
    kl_divergence,
    mutual_information,
)


class TestEntropy:
    def test_uniform_maximizes(self):
        assert entropy(np.full(8, 1 / 8)) == pytest.approx(3.0)

    def test_point_mass_zero(self):
        assert entropy(np.array([1.0, 0.0, 0.0])) == 0.0

    def test_binary_entropy_symmetry_and_peak(self):
        assert binary_entropy(0.5) == pytest.approx(1.0)
        assert binary_entropy(0.1) == pytest.approx(binary_entropy(0.9))
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0

    def test_rejects_non_distribution(self):
        with pytest.raises(ValueError):
            entropy(np.array([0.5, 0.6]))
        with pytest.raises(ValueError):
            entropy(np.array([1.2, -0.2]))

    def test_binary_entropy_range_check(self):
        with pytest.raises(ValueError):
            binary_entropy(1.5)


class TestJointQuantities:
    def test_independent_variables_zero_information(self):
        px = np.array([0.3, 0.7])
        py = np.array([0.25, 0.25, 0.5])
        joint = np.outer(px, py)
        assert mutual_information(joint) == pytest.approx(0.0, abs=1e-12)
        assert joint_entropy(joint) == pytest.approx(entropy(px) + entropy(py))

    def test_perfectly_correlated(self):
        joint = np.diag([0.5, 0.5])
        assert mutual_information(joint) == pytest.approx(1.0)
        assert conditional_entropy(joint) == pytest.approx(0.0)

    def test_chain_rule(self):
        rng = np.random.default_rng(0)
        joint = rng.random((4, 5))
        joint /= joint.sum()
        # H[X, Y] = H[Y] + H[X | Y]
        hy = entropy(joint.sum(axis=0))
        assert joint_entropy(joint) == pytest.approx(hy + conditional_entropy(joint))

    def test_information_symmetric(self):
        rng = np.random.default_rng(1)
        joint = rng.random((3, 3))
        joint /= joint.sum()
        assert mutual_information(joint) == pytest.approx(mutual_information(joint.T), abs=1e-10)

    def test_information_nonnegative(self):
        rng = np.random.default_rng(2)
        for _ in range(10):
            joint = rng.random((3, 4))
            joint /= joint.sum()
            assert mutual_information(joint) >= -1e-12


class TestKL:
    def test_zero_for_identical(self):
        p = np.array([0.2, 0.3, 0.5])
        assert kl_divergence(p, p) == pytest.approx(0.0)

    def test_positive_for_different(self):
        p = np.array([0.9, 0.1])
        q = np.array([0.5, 0.5])
        assert kl_divergence(p, q) > 0

    def test_infinite_when_support_mismatch(self):
        p = np.array([0.5, 0.5])
        q = np.array([1.0, 0.0])
        assert kl_divergence(p, q) == float("inf")

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            kl_divergence(np.array([1.0]), np.array([0.5, 0.5]))
