"""Unit tests for surprisal accounting and the Lemma-3 transcript bound."""

import pytest

from repro.info.surprisal import (
    SurprisalAccount,
    min_rounds_for_entropy,
    surprisal,
    surprisal_change,
    transcript_entropy_bound,
)


class TestSurprisal:
    def test_certain_event_no_surprise(self):
        assert surprisal(1.0) == 0.0

    def test_fair_coin_one_bit(self):
        assert surprisal(0.5) == pytest.approx(1.0)

    def test_rare_event_many_bits(self):
        assert surprisal(2**-20) == pytest.approx(20.0)

    def test_rejects_zero_probability(self):
        with pytest.raises(ValueError):
            surprisal(0.0)

    def test_surprisal_change_positive_when_learning(self):
        # Event went from prob 1/1024 to 1/2: learned 9 bits.
        assert surprisal_change(2**-10, 0.5) == pytest.approx(9.0)

    def test_surprisal_change_negative_when_forgetting(self):
        assert surprisal_change(0.5, 0.25) == pytest.approx(-1.0)


class TestSurprisalAccount:
    def test_information_cost(self):
        acc = SurprisalAccount(entropy_z=100, initial_known_bits=10, output_known_bits=60)
        assert acc.information_cost == 50

    def test_no_negative_ic(self):
        acc = SurprisalAccount(entropy_z=100, initial_known_bits=60, output_known_bits=10)
        assert acc.information_cost == 0.0

    def test_rejects_knowledge_above_entropy(self):
        with pytest.raises(ValueError):
            SurprisalAccount(entropy_z=10, initial_known_bits=11, output_known_bits=5)
        with pytest.raises(ValueError):
            SurprisalAccount(entropy_z=10, initial_known_bits=1, output_known_bits=11)


class TestTranscriptBound:
    def test_lemma3_formula(self):
        # 2^{(B+1)(k-1)T} values -> (B+1)(k-1)T bits.
        assert transcript_entropy_bound(bandwidth=4, k=3, rounds=5) == 50.0

    def test_zero_rounds_zero_entropy(self):
        assert transcript_entropy_bound(4, 3, 0) == 0.0

    def test_inversion_consistency(self):
        bits = 120.0
        rounds = min_rounds_for_entropy(bits, bandwidth=4, k=3)
        assert transcript_entropy_bound(4, 3, rounds) == pytest.approx(bits)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            transcript_entropy_bound(0, 3, 1)
        with pytest.raises(ValueError):
            min_rounds_for_entropy(-1, 4, 3)
