"""Property-based tests for the distributed algorithms (small instances)."""

import numpy as np
from hypothesis import given, settings, strategies as st

import repro
from repro.graphs.graph import Graph
from repro.graphs.triangles_ref import enumerate_triangles


@st.composite
def small_graphs(draw, max_n=16):
    n = draw(st.integers(4, max_n))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), max_size=40, unique=True))
    return Graph(n=n, edges=np.array(edges, dtype=np.int64).reshape(-1, 2))


class TestTriangleAlgorithmProperties:
    @given(small_graphs(), st.integers(2, 30), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_distributed_always_exact(self, g, k, seed):
        res = repro.enumerate_triangles_distributed(g, k=k, seed=seed)
        assert np.array_equal(res.triangles, enumerate_triangles(g))

    @given(small_graphs(), st.integers(2, 12), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_conversion_always_exact(self, g, k, seed):
        res = repro.enumerate_triangles_conversion(g, k=k, seed=seed)
        assert np.array_equal(res.triangles, enumerate_triangles(g))

    @given(small_graphs(), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_congested_clique_always_exact(self, g, seed):
        res = repro.enumerate_triangles_congested_clique(g, seed=seed)
        assert np.array_equal(res.triangles, enumerate_triangles(g))


class TestSortingProperties:
    @given(
        st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=300),
        st.integers(2, 8),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_sort_is_permutation_and_ordered(self, values, k, seed):
        arr = np.array(values)
        res = repro.distributed_sort(arr, k=k, seed=seed)
        out = res.concatenated()
        assert np.all(np.diff(out) >= 0)
        assert np.array_equal(np.sort(out), np.sort(arr))


class TestPageRankProperties:
    @given(st.integers(5, 30), st.integers(2, 6), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_estimates_nonnegative_and_bounded(self, n, k, seed):
        g = repro.cycle_graph(n)
        res = repro.distributed_pagerank(g, k=k, seed=seed, c=5, eps=0.3)
        assert np.all(res.estimates >= 0)
        assert res.estimates.sum() <= 1.5  # Monte-Carlo noise around 1

    @given(st.integers(2, 20), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_lb_graph_mass_conservation(self, q, seed):
        inst = repro.pagerank_lowerbound_graph(q=q, seed=seed)
        res = repro.distributed_pagerank(inst.graph, k=4, seed=seed, c=5, eps=0.3)
        # Estimated total mass is at most 1 in expectation (dangling
        # absorption); allow noise headroom.
        assert res.estimates.sum() <= 1.2
