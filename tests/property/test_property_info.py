"""Property-based tests for the information-theory substrate."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.lowerbounds.general import GeneralLowerBound
from repro.core.lowerbounds.triangles import min_edges_for_triangles, rivin_edge_bound
from repro.info.entropy import conditional_entropy, entropy, joint_entropy, mutual_information
from repro.info.surprisal import surprisal, transcript_entropy_bound


@st.composite
def distributions(draw, max_size=8):
    size = draw(st.integers(1, max_size))
    raw = draw(
        st.lists(st.floats(0.01, 1.0), min_size=size, max_size=size)
    )
    p = np.array(raw)
    return p / p.sum()


@st.composite
def joints(draw, max_size=5):
    rows = draw(st.integers(1, max_size))
    cols = draw(st.integers(1, max_size))
    raw = draw(
        st.lists(st.floats(0.01, 1.0), min_size=rows * cols, max_size=rows * cols)
    )
    j = np.array(raw).reshape(rows, cols)
    return j / j.sum()


class TestEntropyProperties:
    @given(distributions())
    @settings(max_examples=80, deadline=None)
    def test_entropy_bounds(self, p):
        h = entropy(p)
        assert -1e-9 <= h <= np.log2(p.size) + 1e-9

    @given(joints())
    @settings(max_examples=80, deadline=None)
    def test_conditioning_reduces_entropy(self, j):
        hx = entropy(j.sum(axis=1))
        assert conditional_entropy(j) <= hx + 1e-9

    @given(joints())
    @settings(max_examples=80, deadline=None)
    def test_mutual_information_nonnegative_and_bounded(self, j):
        mi = mutual_information(j)
        hx = entropy(j.sum(axis=1))
        hy = entropy(j.sum(axis=0))
        assert -1e-9 <= mi <= min(hx, hy) + 1e-9

    @given(joints())
    @settings(max_examples=80, deadline=None)
    def test_chain_rule(self, j):
        assert abs(joint_entropy(j) - (entropy(j.sum(axis=0)) + conditional_entropy(j))) < 1e-8

    @given(st.floats(1e-9, 1.0))
    @settings(max_examples=80)
    def test_surprisal_nonnegative_decreasing(self, p):
        assert surprisal(p) >= 0
        assert surprisal(p) >= surprisal(min(1.0, p * 2))


class TestLowerBoundProperties:
    @given(st.floats(0, 1e6), st.integers(1, 1000), st.integers(2, 1000))
    @settings(max_examples=80)
    def test_rounds_monotone_in_ic(self, ic, bandwidth, k):
        lb1 = GeneralLowerBound(ic, bandwidth, k)
        lb2 = GeneralLowerBound(ic + 1, bandwidth, k)
        assert lb2.rounds > lb1.rounds

    @given(st.integers(0, 10**9))
    @settings(max_examples=80)
    def test_rivin_below_exact_extremal(self, t):
        assert rivin_edge_bound(t) <= min_edges_for_triangles(t) + 1e-9

    @given(st.integers(1, 10**7))
    @settings(max_examples=60)
    def test_min_edges_inverse_consistency(self, t):
        # e = min_edges(t) edges can support >= t triangles, e-1 cannot.
        e = min_edges_for_triangles(t)

        def max_tris(edges):
            d = int((1 + np.sqrt(1 + 8 * edges)) // 2)
            while d * (d - 1) // 2 > edges:
                d -= 1
            r = edges - d * (d - 1) // 2
            return d * (d - 1) * (d - 2) // 6 + r * (r - 1) // 2

        assert max_tris(e) >= t
        if e > 0:
            assert max_tris(e - 1) < t

    @given(st.integers(1, 64), st.integers(2, 64), st.integers(0, 200))
    @settings(max_examples=60)
    def test_transcript_bound_monotone(self, bandwidth, k, rounds):
        a = transcript_entropy_bound(bandwidth, k, rounds)
        b = transcript_entropy_bound(bandwidth, k, rounds + 1)
        assert b > a or (a == b == 0)
