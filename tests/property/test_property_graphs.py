"""Property-based tests for the graph substrate."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graphs.graph import Graph
from repro.graphs.lowerbound import pagerank_lowerbound_graph
from repro.graphs.triangles_ref import (
    count_open_triads,
    count_triangles,
    enumerate_triangles_edges,
)


@st.composite
def edge_sets(draw, max_n=20):
    n = draw(st.integers(3, max_n))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), max_size=60, unique=True))
    return n, np.array(edges, dtype=np.int64).reshape(-1, 2)


class TestGraphProperties:
    @given(edge_sets())
    @settings(max_examples=60, deadline=None)
    def test_degree_sum_is_twice_edges(self, ne):
        n, edges = ne
        g = Graph(n=n, edges=edges)
        assert g.degrees().sum() == 2 * g.m

    @given(edge_sets())
    @settings(max_examples=60, deadline=None)
    def test_has_edge_matches_adjacency_matrix(self, ne):
        n, edges = ne
        g = Graph(n=n, edges=edges)
        a = g.adjacency_matrix()
        for u in range(n):
            for v in range(n):
                if u != v:
                    assert g.has_edge(u, v) == bool(a[u, v])

    @given(edge_sets())
    @settings(max_examples=40, deadline=None)
    def test_neighbor_symmetry(self, ne):
        n, edges = ne
        g = Graph(n=n, edges=edges)
        for u in range(n):
            for v in g.neighbors(u):
                assert u in g.neighbors(int(v))


class TestTriangleProperties:
    @given(edge_sets())
    @settings(max_examples=50, deadline=None)
    def test_matches_matrix_trace_count(self, ne):
        # t = trace(A^3) / 6 for simple undirected graphs.
        n, edges = ne
        g = Graph(n=n, edges=edges)
        a = g.adjacency_matrix().astype(np.int64)
        expected = int(np.trace(a @ a @ a)) // 6
        assert count_triangles(g) == expected

    @given(edge_sets())
    @settings(max_examples=50, deadline=None)
    def test_wedge_identity(self, ne):
        # wedges = open triads + 3 * triangles.
        n, edges = ne
        g = Graph(n=n, edges=edges)
        deg = g.degrees()
        wedges = int((deg * (deg - 1) // 2).sum())
        assert wedges == count_open_triads(g) + 3 * count_triangles(g)

    @given(edge_sets())
    @settings(max_examples=40, deadline=None)
    def test_enumeration_invariant_under_edge_order(self, ne):
        n, edges = ne
        if edges.shape[0] < 2:
            return
        rng = np.random.default_rng(0)
        shuffled = edges[rng.permutation(edges.shape[0])]
        a = enumerate_triangles_edges(n, edges)
        b = enumerate_triangles_edges(n, shuffled)
        assert np.array_equal(a, b)


class TestLowerBoundGraphProperties:
    @given(st.integers(1, 60), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_figure1_shape_invariants(self, q, seed):
        inst = pagerank_lowerbound_graph(q=q, seed=seed)
        g = inst.graph
        assert g.n == 4 * q + 1
        assert g.m == 4 * q
        # w is the unique sink with in-degree q.
        assert g.in_degrees()[inst.w_id] == q
        assert g.out_neighbors(inst.w_id).size == 0
        # Every t has exactly one in- and one out-edge.
        assert np.all(g.out_degrees()[inst.t_ids] == 1)
        assert np.all(g.in_degrees()[inst.t_ids] == 1)

    @given(st.integers(1, 40), st.integers(0, 2**31 - 1), st.floats(0.05, 0.95))
    @settings(max_examples=40, deadline=None)
    def test_lemma4_separation_always_positive(self, q, seed, eps):
        inst = pagerank_lowerbound_graph(q=q, seed=seed)
        v0, v1 = inst.lemma4_values(eps)
        assert v1 > v0 > 0

    @given(st.integers(2, 40), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_analytic_pagerank_mass_at_most_one(self, q, seed):
        inst = pagerank_lowerbound_graph(q=q, seed=seed)
        pr = inst.analytic_pagerank(0.2)
        assert 0 < pr.sum() <= 1.0 + 1e-12
