"""Cross-backend equivalence property tests.

For every algorithm family, randomized (Hypothesis) instances must
produce *identical* outputs, round counts, and per-link bit totals on
``MessageEngine`` and ``VectorEngine`` given the same seed — the
contract that makes the execution backend a pure performance choice.

Every kernelized family (all per-machine superstep compute routed
through ``map_machines``) is additionally checked against
``ProcessEngine``: the worker pool advances each machine's RNG stream in
exactly the inline draw order, so randomized instances must stay
bit-identical there too.  The process runs go through ``runtime.run``
(which sizes the pool and releases it warm, so the whole class reuses
one set of worker processes).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

import repro
from repro import runtime
from repro.graphs.graph import Graph

ENGINES = ("message", "vector")


@st.composite
def small_graphs(draw, max_n=16, max_edges=40):
    n = draw(st.integers(4, max_n))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), max_size=max_edges, unique=True))
    return Graph(n=n, edges=np.array(edges, dtype=np.int64).reshape(-1, 2))


def _metrics_signature(metrics):
    """Everything the equivalence contract promises about accounting."""
    return (
        metrics.rounds,
        metrics.phases,
        metrics.messages,
        metrics.bits,
        metrics.local_messages,
        metrics.sent_bits.tolist(),
        metrics.received_bits.tolist(),
        metrics.sent_messages.tolist(),
        metrics.received_messages.tolist(),
        [(p.rounds, p.bits, p.max_link_bits, p.label) for p in metrics.phase_log],
    )


class TestPageRankEngineEquivalence:
    @given(small_graphs(), st.integers(2, 8), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_identical_estimates_and_accounting(self, g, k, seed):
        runs = [
            repro.distributed_pagerank(g, k=k, seed=seed, c=2, engine=e)
            for e in ENGINES
        ]
        assert np.array_equal(runs[0].estimates, runs[1].estimates)
        assert runs[0].iterations == runs[1].iterations
        assert _metrics_signature(runs[0].metrics) == _metrics_signature(runs[1].metrics)

    @given(st.integers(2, 6), st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_heavy_path_identical_on_star(self, k, seed):
        g = repro.star_graph(40)
        runs = [
            repro.distributed_pagerank(g, k=k, seed=seed, c=4, engine=e)
            for e in ENGINES
        ]
        assert np.array_equal(runs[0].estimates, runs[1].estimates)
        assert _metrics_signature(runs[0].metrics) == _metrics_signature(runs[1].metrics)

    @given(small_graphs(), st.integers(2, 6), st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_baseline_identical(self, g, k, seed):
        runs = [
            repro.baseline_pagerank(g, k=k, seed=seed, c=1, engine=e) for e in ENGINES
        ]
        assert np.array_equal(runs[0].estimates, runs[1].estimates)
        assert _metrics_signature(runs[0].metrics) == _metrics_signature(runs[1].metrics)


class TestTriangleEngineEquivalence:
    @given(small_graphs(), st.integers(2, 30), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_identical_triangles_and_accounting(self, g, k, seed):
        runs = [
            repro.enumerate_triangles_distributed(g, k=k, seed=seed, engine=e)
            for e in ENGINES
        ]
        assert np.array_equal(runs[0].triangles, runs[1].triangles)
        assert np.array_equal(runs[0].per_machine_output, runs[1].per_machine_output)
        assert _metrics_signature(runs[0].metrics) == _metrics_signature(runs[1].metrics)

    @given(small_graphs(), st.integers(16, 40), st.integers(0, 2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_subgraph_enumeration_identical(self, g, k, seed):
        runs = [
            repro.enumerate_subgraphs_distributed(g, k=k, pattern="k4", seed=seed, engine=e)
            for e in ENGINES
        ]
        assert np.array_equal(runs[0].triangles, runs[1].triangles)
        assert _metrics_signature(runs[0].metrics) == _metrics_signature(runs[1].metrics)


class TestSortingEngineEquivalence:
    @given(
        st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=200),
        st.integers(2, 8),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_identical_blocks_and_accounting(self, values, k, seed):
        values = np.asarray(values, dtype=np.float64)
        runs = [
            repro.distributed_sort(values, k=k, seed=seed, engine=e) for e in ENGINES
        ]
        assert np.array_equal(runs[0].concatenated(), runs[1].concatenated())
        for a, b in zip(runs[0].blocks, runs[1].blocks):
            assert np.array_equal(a, b)
        assert _metrics_signature(runs[0].metrics) == _metrics_signature(runs[1].metrics)


class TestMSTEngineEquivalence:
    @given(small_graphs(max_n=12), st.integers(2, 8), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_identical_forest_and_accounting(self, g, k, seed):
        w = np.random.default_rng(seed).random(g.m)
        runs = [
            repro.distributed_mst(g, w, k=k, seed=seed, engine=e) for e in ENGINES
        ]
        assert np.array_equal(runs[0].edges, runs[1].edges)
        assert runs[0].total_weight == runs[1].total_weight
        assert _metrics_signature(runs[0].metrics) == _metrics_signature(runs[1].metrics)


def _process_pair(name, data, k, seed, **params):
    """The same registry run on the vector and process backends."""
    inline = runtime.run(name, data, k, seed=seed, engine="vector", **params)
    procs = runtime.run(
        name, data, k, seed=seed, engine="process", workers=2, **params
    )
    assert _metrics_signature(inline.metrics) == _metrics_signature(procs.metrics)
    return inline.result, procs.result


class TestProcessEngineKernelEquivalence:
    """Every kernelized family, vector vs multiprocessing shard workers."""

    @given(small_graphs(), st.integers(2, 8), st.integers(0, 2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_pagerank(self, g, k, seed):
        a, b = _process_pair("pagerank", g, k, seed, c=2)
        assert np.array_equal(a.estimates, b.estimates)
        assert a.iterations == b.iterations

    @given(small_graphs(), st.integers(2, 30), st.integers(0, 2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_triangles(self, g, k, seed):
        a, b = _process_pair("triangles", g, k, seed)
        assert np.array_equal(a.triangles, b.triangles)
        assert np.array_equal(a.per_machine_output, b.per_machine_output)

    @given(small_graphs(), st.integers(0, 2**31 - 1))
    @settings(max_examples=6, deadline=None)
    def test_congested_clique_triangles(self, g, seed):
        a, b = _process_pair("congested-clique-triangles", g, g.n, seed)
        assert np.array_equal(a.triangles, b.triangles)

    @given(small_graphs(), st.integers(2, 8), st.integers(0, 2**31 - 1))
    @settings(max_examples=6, deadline=None)
    def test_triangles_conversion(self, g, k, seed):
        a, b = _process_pair("triangles-conversion", g, k, seed)
        assert np.array_equal(a.triangles, b.triangles)
        assert np.array_equal(a.per_machine_output, b.per_machine_output)

    @given(small_graphs(), st.integers(16, 40), st.integers(0, 2**31 - 1))
    @settings(max_examples=6, deadline=None)
    def test_subgraphs(self, g, k, seed):
        a, b = _process_pair("subgraphs", g, k, seed, pattern="k4")
        assert np.array_equal(a.triangles, b.triangles)

    @given(
        st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=120),
        st.integers(2, 8),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=8, deadline=None)
    def test_sorting(self, values, k, seed):
        values = np.asarray(values, dtype=np.float64)
        a, b = _process_pair("sorting", values, k, seed)
        for blk_a, blk_b in zip(a.blocks, b.blocks):
            assert np.array_equal(blk_a, blk_b)

    @given(small_graphs(max_n=12), st.integers(2, 8), st.integers(0, 2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_mst(self, g, k, seed):
        a, b = _process_pair("mst", g, k, seed)
        assert np.array_equal(a.edges, b.edges)
        assert a.total_weight == b.total_weight

    @given(small_graphs(max_n=12), st.integers(2, 8), st.integers(0, 2**31 - 1))
    @settings(max_examples=6, deadline=None)
    def test_connectivity(self, g, k, seed):
        a, b = _process_pair("connectivity", g, k, seed)
        assert np.array_equal(a.labels, b.labels)
        assert a.num_components == b.num_components
