"""Cross-backend equivalence property tests.

For every algorithm family, randomized (Hypothesis) instances must
produce *identical* outputs, round counts, and per-link bit totals on
``MessageEngine`` and ``VectorEngine`` given the same seed — the
contract that makes the execution backend a pure performance choice.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

import repro
from repro.graphs.graph import Graph

ENGINES = ("message", "vector")


@st.composite
def small_graphs(draw, max_n=16, max_edges=40):
    n = draw(st.integers(4, max_n))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), max_size=max_edges, unique=True))
    return Graph(n=n, edges=np.array(edges, dtype=np.int64).reshape(-1, 2))


def _metrics_signature(metrics):
    """Everything the equivalence contract promises about accounting."""
    return (
        metrics.rounds,
        metrics.phases,
        metrics.messages,
        metrics.bits,
        metrics.local_messages,
        metrics.sent_bits.tolist(),
        metrics.received_bits.tolist(),
        metrics.sent_messages.tolist(),
        metrics.received_messages.tolist(),
        [(p.rounds, p.bits, p.max_link_bits, p.label) for p in metrics.phase_log],
    )


class TestPageRankEngineEquivalence:
    @given(small_graphs(), st.integers(2, 8), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_identical_estimates_and_accounting(self, g, k, seed):
        runs = [
            repro.distributed_pagerank(g, k=k, seed=seed, c=2, engine=e)
            for e in ENGINES
        ]
        assert np.array_equal(runs[0].estimates, runs[1].estimates)
        assert runs[0].iterations == runs[1].iterations
        assert _metrics_signature(runs[0].metrics) == _metrics_signature(runs[1].metrics)

    @given(st.integers(2, 6), st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_heavy_path_identical_on_star(self, k, seed):
        g = repro.star_graph(40)
        runs = [
            repro.distributed_pagerank(g, k=k, seed=seed, c=4, engine=e)
            for e in ENGINES
        ]
        assert np.array_equal(runs[0].estimates, runs[1].estimates)
        assert _metrics_signature(runs[0].metrics) == _metrics_signature(runs[1].metrics)

    @given(small_graphs(), st.integers(2, 6), st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_baseline_identical(self, g, k, seed):
        runs = [
            repro.baseline_pagerank(g, k=k, seed=seed, c=1, engine=e) for e in ENGINES
        ]
        assert np.array_equal(runs[0].estimates, runs[1].estimates)
        assert _metrics_signature(runs[0].metrics) == _metrics_signature(runs[1].metrics)


class TestTriangleEngineEquivalence:
    @given(small_graphs(), st.integers(2, 30), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_identical_triangles_and_accounting(self, g, k, seed):
        runs = [
            repro.enumerate_triangles_distributed(g, k=k, seed=seed, engine=e)
            for e in ENGINES
        ]
        assert np.array_equal(runs[0].triangles, runs[1].triangles)
        assert np.array_equal(runs[0].per_machine_output, runs[1].per_machine_output)
        assert _metrics_signature(runs[0].metrics) == _metrics_signature(runs[1].metrics)

    @given(small_graphs(), st.integers(16, 40), st.integers(0, 2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_subgraph_enumeration_identical(self, g, k, seed):
        runs = [
            repro.enumerate_subgraphs_distributed(g, k=k, pattern="k4", seed=seed, engine=e)
            for e in ENGINES
        ]
        assert np.array_equal(runs[0].triangles, runs[1].triangles)
        assert _metrics_signature(runs[0].metrics) == _metrics_signature(runs[1].metrics)


class TestSortingEngineEquivalence:
    @given(
        st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=200),
        st.integers(2, 8),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_identical_blocks_and_accounting(self, values, k, seed):
        values = np.asarray(values, dtype=np.float64)
        runs = [
            repro.distributed_sort(values, k=k, seed=seed, engine=e) for e in ENGINES
        ]
        assert np.array_equal(runs[0].concatenated(), runs[1].concatenated())
        for a, b in zip(runs[0].blocks, runs[1].blocks):
            assert np.array_equal(a, b)
        assert _metrics_signature(runs[0].metrics) == _metrics_signature(runs[1].metrics)


class TestMSTEngineEquivalence:
    @given(small_graphs(max_n=12), st.integers(2, 8), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_identical_forest_and_accounting(self, g, k, seed):
        w = np.random.default_rng(seed).random(g.m)
        runs = [
            repro.distributed_mst(g, w, k=k, seed=seed, engine=e) for e in ENGINES
        ]
        assert np.array_equal(runs[0].edges, runs[1].edges)
        assert runs[0].total_weight == runs[1].total_weight
        assert _metrics_signature(runs[0].metrics) == _metrics_signature(runs[1].metrics)
