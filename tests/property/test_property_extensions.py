"""Property-based tests for the extension modules (subgraphs, MST,
connectivity, CONGEST conversion)."""

import numpy as np
from hypothesis import given, settings, strategies as st

import repro
from repro.core.mst import DisjointSetUnion, distributed_mst, kruskal_mst
from repro.core.subgraphs.local import enumerate_c4_edges, enumerate_k4_edges
from repro.graphs.graph import Graph


@st.composite
def small_graphs(draw, max_n=14):
    n = draw(st.integers(4, max_n))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), max_size=40, unique=True))
    return Graph(n=n, edges=np.array(edges, dtype=np.int64).reshape(-1, 2))


class TestSubgraphProperties:
    @given(small_graphs())
    @settings(max_examples=40, deadline=None)
    def test_k4_rows_are_cliques(self, g):
        for row in enumerate_k4_edges(g.n, g.edges):
            a, b, c, d = map(int, row)
            assert a < b < c < d
            import itertools

            for x, y in itertools.combinations((a, b, c, d), 2):
                assert g.has_edge(x, y)

    @given(small_graphs())
    @settings(max_examples=40, deadline=None)
    def test_c4_rows_are_cycles(self, g):
        for v0, v1, v2, v3 in enumerate_c4_edges(g.n, g.edges):
            assert g.has_edge(v0, v1) and g.has_edge(v1, v2)
            assert g.has_edge(v2, v3) and g.has_edge(v3, v0)
            assert v0 == min(v0, v1, v2, v3) and v1 < v3

    @given(small_graphs())
    @settings(max_examples=30, deadline=None)
    def test_k4_count_vs_c4_in_complete_subsets(self, g):
        # Every K4 contributes exactly 3 C4s, so #C4 >= 3 * #K4.
        k4 = enumerate_k4_edges(g.n, g.edges).shape[0]
        c4 = enumerate_c4_edges(g.n, g.edges).shape[0]
        assert c4 >= 3 * k4

    @given(small_graphs(), st.integers(2, 30), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_distributed_k4_exact(self, g, k, seed):
        res = repro.enumerate_subgraphs_distributed(g, k=k, pattern="k4", seed=seed)
        assert np.array_equal(res.triangles, enumerate_k4_edges(g.n, g.edges))


class TestMSTProperties:
    @given(small_graphs(), st.integers(0, 2**31 - 1), st.integers(2, 8))
    @settings(max_examples=30, deadline=None)
    def test_distributed_weight_matches_kruskal(self, g, seed, k):
        w = np.random.default_rng(seed).random(g.m)
        ref_edges, ref_total = kruskal_mst(g, w)
        res = distributed_mst(g, w, k=k, seed=seed)
        assert abs(res.total_weight - ref_total) < 1e-9
        assert res.edges.shape[0] == ref_edges.shape[0]

    @given(small_graphs(), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_forest_edge_count_identity(self, g, seed):
        # |forest| = n - #components, always.
        import networkx as nx

        w = np.random.default_rng(seed).random(g.m)
        res = distributed_mst(g, w, k=4, seed=seed)
        comps = nx.number_connected_components(g.to_networkx())
        assert res.edges.shape[0] == g.n - comps
        assert res.num_components == comps

    @given(st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_dsu_matches_networkx(self, pairs):
        import networkx as nx

        dsu = DisjointSetUnion(20)
        g = nx.Graph()
        g.add_nodes_from(range(20))
        for a, b in pairs:
            if a != b:
                dsu.union(a, b)
                g.add_edge(a, b)
        assert dsu.num_components == nx.number_connected_components(g)


class TestConnectivityProperties:
    @given(small_graphs(), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_labels_define_components(self, g, seed):
        import networkx as nx
        from repro.core.connectivity import connected_components_distributed

        res = connected_components_distributed(g, k=4, seed=seed)
        for comp in nx.connected_components(g.to_networkx()):
            labels = {int(res.labels[v]) for v in comp}
            assert labels == {min(comp)}


class TestConversionProperties:
    @given(st.integers(10, 40), st.integers(2, 8), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_conversion_volume_preserved(self, n, k, seed):
        from repro.congest import congest_pagerank, convert_execution
        from repro.kmachine.partition import random_vertex_partition

        g = repro.cycle_graph(max(3, n))
        _, execution = congest_pagerank(g, seed=seed, c=4)
        p = random_vertex_partition(g.n, k, seed=seed)
        metrics = convert_execution(execution, p, k=k, bandwidth=16)
        assert metrics.messages + metrics.local_messages == execution.total_messages
