"""Property-based tests for the k-machine substrate (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro._util import bits_for, bits_for_count, ceil_div, icbrt, is_perfect_cube
from repro.kmachine.message import Message
from repro.kmachine.network import LinkNetwork
from repro.kmachine.partition import random_vertex_partition


@st.composite
def workloads(draw):
    """A small random message workload with valid sources."""
    k = draw(st.integers(2, 6))
    n_msgs = draw(st.integers(0, 40))
    msgs = []
    for _ in range(n_msgs):
        i = draw(st.integers(0, k - 1))
        j = draw(st.integers(0, k - 1))
        bits = draw(st.integers(1, 25))
        msgs.append(Message(src=i, dst=j, kind="w", bits=bits))
    return k, msgs


class TestNetworkProperties:
    @given(workloads(), st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_delivery_conserves_messages(self, workload, bandwidth):
        k, msgs = workload
        net = LinkNetwork(k, bandwidth=bandwidth)
        out = [[] for _ in range(k)]
        for m in msgs:
            out[m.src].append(m)
        inboxes = net.exchange(out)
        assert sum(len(b) for b in inboxes) == len(msgs)
        net.metrics.check_conservation()

    @given(workloads(), st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_rounds_lower_bounded_by_total_bits(self, workload, bandwidth):
        # Rounds >= total remote bits / (B * k * (k-1)): the network cannot
        # move more than B bits per link per round.
        k, msgs = workload
        net = LinkNetwork(k, bandwidth=bandwidth)
        out = [[] for _ in range(k)]
        for m in msgs:
            out[m.src].append(m)
        net.exchange(out)
        remote_bits = sum(m.bits for m in msgs if not m.is_local)
        assert net.rounds * bandwidth * k * (k - 1) >= remote_bits

    @given(workloads(), st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_strict_mode_at_least_phase_mode(self, workload, bandwidth):
        k, msgs = workload
        phase = LinkNetwork(k, bandwidth=bandwidth, mode="phase")
        strict = LinkNetwork(k, bandwidth=bandwidth, mode="strict")
        out = [[m for m in msgs if m.src == i] for i in range(k)]
        phase.exchange([list(b) for b in out])
        strict.exchange([list(b) for b in out])
        assert strict.rounds >= phase.rounds

    @given(st.integers(1, 500), st.integers(2, 12), st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_partition_covers_everything(self, n, k, seed):
        p = random_vertex_partition(n, k, seed=seed)
        counts = p.counts()
        assert counts.sum() == n
        assert counts.size == k


class TestUtilProperties:
    @given(st.integers(0, 10**9), st.integers(1, 10**6))
    def test_ceil_div_definition(self, a, b):
        q = ceil_div(a, b)
        assert (q - 1) * b < a <= q * b or (a == 0 and q == 0)

    @given(st.integers(2, 10**9))
    def test_bits_for_addresses_all_values(self, n):
        b = bits_for(n)
        assert 2**b >= n
        assert 2 ** (b - 1) < n

    @given(st.integers(0, 10**9))
    def test_bits_for_count_covers_range(self, c):
        b = bits_for_count(c)
        assert 2**b >= c + 1

    @given(st.integers(0, 10**12))
    def test_icbrt_definition(self, n):
        r = icbrt(n)
        assert r**3 <= n < (r + 1) ** 3

    @given(st.integers(1, 1000))
    def test_perfect_cube_detection(self, r):
        assert is_perfect_cube(r**3)
        if r > 1:
            assert not is_perfect_cube(r**3 - 1)
