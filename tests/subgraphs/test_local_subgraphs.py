"""Unit tests for sequential K4 / C4 enumeration."""

import itertools

import numpy as np
import pytest

import repro
from repro.core.subgraphs.local import (
    count_c4,
    count_k4,
    enumerate_c4_edges,
    enumerate_k4_edges,
)
from repro.errors import GraphError


def brute_k4(graph):
    a = graph.adjacency_matrix()
    return [
        t
        for t in itertools.combinations(range(graph.n), 4)
        if all(a[x, y] for x, y in itertools.combinations(t, 2))
    ]


def brute_c4(graph):
    a = graph.adjacency_matrix()
    out = set()
    for quad in itertools.combinations(range(graph.n), 4):
        for perm in itertools.permutations(quad):
            v0, v1, v2, v3 = perm
            if v0 != min(quad) or v1 > v3:
                continue
            if a[v0, v1] and a[v1, v2] and a[v2, v3] and a[v3, v0]:
                out.add((v0, v1, v2, v3))
    return sorted(out)


class TestK4:
    def test_complete_graph_count(self):
        g = repro.complete_graph(7)
        assert count_k4(g) == 35  # C(7, 4)

    def test_single_k4(self):
        g = repro.complete_graph(4)
        assert enumerate_k4_edges(g.n, g.edges).tolist() == [[0, 1, 2, 3]]

    def test_k4_free(self):
        g = repro.cycle_graph(10)
        assert count_k4(g) == 0

    def test_triangle_is_not_k4(self):
        g = repro.complete_graph(3)
        assert count_k4(g) == 0

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_bruteforce_gnp(self, seed):
        g = repro.gnp_random_graph(18, 0.45, seed=seed)
        ours = enumerate_k4_edges(g.n, g.edges)
        brute = np.array(brute_k4(g), dtype=np.int64).reshape(-1, 4)
        assert np.array_equal(ours, brute)

    def test_rows_sorted_unique(self):
        g = repro.gnp_random_graph(20, 0.5, seed=3)
        rows = enumerate_k4_edges(g.n, g.edges)
        assert np.all(rows[:, 0] < rows[:, 1])
        assert np.all(rows[:, 1] < rows[:, 2])
        assert np.all(rows[:, 2] < rows[:, 3])
        assert np.unique(rows, axis=0).shape[0] == rows.shape[0]

    def test_empty_edges(self):
        assert enumerate_k4_edges(5, np.zeros((0, 2), dtype=np.int64)).shape == (0, 4)

    def test_rejects_directed_count(self):
        g = repro.path_graph(5, directed=True)
        with pytest.raises(GraphError):
            count_k4(g)


class TestC4:
    def test_plain_cycle(self):
        g = repro.cycle_graph(4)
        assert enumerate_c4_edges(g.n, g.edges).tolist() == [[0, 1, 2, 3]]

    def test_k4_contains_three_c4(self):
        g = repro.complete_graph(4)
        assert count_c4(g) == 3

    def test_complete_graph_count(self):
        # K_n has 3 * C(n, 4) four-cycles.
        g = repro.complete_graph(6)
        assert count_c4(g) == 3 * 15

    def test_c4_free(self):
        g = repro.star_graph(10)
        assert count_c4(g) == 0

    def test_path_has_no_c4(self):
        g = repro.path_graph(8)
        assert count_c4(g) == 0

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_bruteforce_gnp(self, seed):
        g = repro.gnp_random_graph(14, 0.4, seed=seed)
        ours = enumerate_c4_edges(g.n, g.edges)
        brute = np.array(brute_c4(g), dtype=np.int64).reshape(-1, 4)
        assert np.array_equal(ours, brute)

    def test_canonical_rows(self):
        g = repro.gnp_random_graph(16, 0.4, seed=4)
        rows = enumerate_c4_edges(g.n, g.edges)
        for v0, v1, v2, v3 in rows:
            assert v0 == min(v0, v1, v2, v3)
            assert v1 < v3
            assert g.has_edge(v0, v1) and g.has_edge(v1, v2)
            assert g.has_edge(v2, v3) and g.has_edge(v3, v0)

    def test_bipartite_complete(self):
        # K_{2,3}: C(2,2)*C(3,2) = 3 four-cycles.
        edges = [(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)]
        g = repro.Graph(n=5, edges=edges)
        assert count_c4(g) == 3
