"""Tests for distributed K4 / C4 enumeration (§1.2 generalization)."""

import numpy as np
import pytest

import repro
from repro.core.subgraphs import colors4
from repro.core.subgraphs.local import enumerate_c4_edges, enumerate_k4_edges
from repro.errors import AlgorithmError


class TestColors4:
    def test_num_colors(self):
        assert colors4.num_colors_for_machines_r4(16) == 2
        assert colors4.num_colors_for_machines_r4(81) == 3
        assert colors4.num_colors_for_machines_r4(80) == 2
        assert colors4.num_colors_for_machines_r4(2) == 1

    def test_quad_round_trip(self):
        q = 3
        for a in range(q):
            for b in range(q):
                for c in range(q):
                    for d in range(q):
                        mid = colors4.machine_for_quad(a, b, c, d, q)
                        assert colors4.quad_for_machine(mid, q) == (a, b, c, d)

    def test_sorted_quads_count(self):
        # Multisets of size 4 from q colors: C(q+3, 4).
        import math

        for q in (1, 2, 3, 4):
            assert len(colors4.sorted_quads(q)) == math.comb(q + 3, 4)

    def test_quads_needing_edge_count_and_distinct(self):
        q = 3
        for cu in range(q):
            for cv in range(q):
                ids = colors4.quads_needing_edge(cu, cv, q)
                assert ids.size == q * (q + 1) // 2
                assert np.unique(ids).size == ids.size

    def test_vectorized_matches_scalar(self):
        q = 3
        rng = np.random.default_rng(0)
        cu = rng.integers(0, q, size=50)
        cv = rng.integers(0, q, size=50)
        vec = colors4.quads_needing_edge_array(cu, cv, q)
        for e in range(50):
            scalar = colors4.quads_needing_edge(int(cu[e]), int(cv[e]), q)
            assert np.array_equal(np.sort(vec[e]), np.sort(scalar))

    def test_every_quad_covered_by_its_pairs(self):
        q = 2
        for quad in colors4.sorted_quads(q):
            mid = colors4.machine_for_quad(*quad, q)
            # Every corner pair of the quad must route edges to it.
            import itertools

            for x, y in itertools.combinations(quad, 2):
                assert mid in colors4.quads_needing_edge(x, y, q)


class TestDistributedEnumeration:
    @pytest.mark.parametrize("k", [2, 16, 20, 81])
    def test_k4_exact(self, k):
        g = repro.gnp_random_graph(30, 0.4, seed=1)
        res = repro.enumerate_subgraphs_distributed(g, k=k, pattern="k4", seed=2)
        expected = enumerate_k4_edges(g.n, g.edges)
        res.assert_no_duplicates()
        assert np.array_equal(res.triangles, expected)

    @pytest.mark.parametrize("k", [2, 16, 81])
    def test_c4_exact(self, k):
        g = repro.gnp_random_graph(24, 0.35, seed=3)
        res = repro.enumerate_subgraphs_distributed(g, k=k, pattern="c4", seed=4)
        expected = enumerate_c4_edges(g.n, g.edges)
        assert np.array_equal(res.triangles, expected)

    def test_k4_on_planted_cliques(self):
        # Two disjoint K5s: 2 * C(5,4) = 10 four-cliques.
        import itertools

        edges = [(a, b) for a, b in itertools.combinations(range(5), 2)]
        edges += [(a + 5, b + 5) for a, b in itertools.combinations(range(5), 2)]
        g = repro.Graph(n=12, edges=edges)
        res = repro.enumerate_subgraphs_distributed(g, k=16, pattern="k4", seed=5)
        assert res.count == 10

    def test_without_proxies_still_exact(self):
        g = repro.gnp_random_graph(24, 0.4, seed=6)
        res = repro.enumerate_subgraphs_distributed(
            g, k=16, pattern="k4", seed=7, use_proxies=False
        )
        assert np.array_equal(res.triangles, enumerate_k4_edges(g.n, g.edges))

    def test_deterministic(self):
        g = repro.gnp_random_graph(20, 0.4, seed=8)
        a = repro.enumerate_subgraphs_distributed(g, k=16, pattern="c4", seed=9)
        b = repro.enumerate_subgraphs_distributed(g, k=16, pattern="c4", seed=9)
        assert np.array_equal(a.triangles, b.triangles)
        assert a.rounds == b.rounds

    def test_rerouting_volume_is_m_choose2_colors(self):
        g = repro.gnp_random_graph(30, 0.4, seed=10)
        k = 81  # q = 3 -> 6 owners per edge
        res = repro.enumerate_subgraphs_distributed(g, k=k, pattern="k4", seed=11)
        phase = next(p for p in res.metrics.phase_log if p.label.endswith("to-quads"))
        total = phase.messages  # remote copies only
        assert total <= g.m * 6
        assert total >= g.m * 6 * (1 - 3 / k) - 10

    def test_per_machine_output_sums(self):
        g = repro.gnp_random_graph(26, 0.5, seed=12)
        res = repro.enumerate_subgraphs_distributed(g, k=16, pattern="k4", seed=13)
        assert res.per_machine_output.sum() == res.count

    def test_empty_graph(self):
        g = repro.empty_graph(10)
        res = repro.enumerate_subgraphs_distributed(g, k=16, pattern="k4", seed=14)
        assert res.count == 0

    def test_rejects_bad_pattern(self):
        g = repro.cycle_graph(5)
        with pytest.raises(AlgorithmError, match="pattern"):
            repro.enumerate_subgraphs_distributed(g, k=16, pattern="k5")

    def test_rejects_directed(self):
        g = repro.path_graph(5, directed=True)
        with pytest.raises(AlgorithmError):
            repro.enumerate_subgraphs_distributed(g, k=16, pattern="k4")

    def test_rounds_improve_with_k(self):
        g = repro.gnp_random_graph(80, 0.5, seed=15)
        B = 8
        r16 = repro.enumerate_subgraphs_distributed(
            g, k=16, pattern="k4", seed=16, bandwidth=B
        ).rounds
        r256 = repro.enumerate_subgraphs_distributed(
            g, k=256, pattern="k4", seed=16, bandwidth=B
        ).rounds
        assert r256 < r16
