"""Trace export tests: Chrome trace-event and speedscope documents."""

import json

import pytest

import repro
from repro import runtime
from repro.obs.export import (
    EXPORT_FORMATS,
    default_export_path,
    export_chrome,
    export_speedscope,
    export_trace,
    validate_chrome_trace,
    write_export,
)
from repro.obs.trace import TraceError, Tracer, read_trace


@pytest.fixture
def graph():
    return repro.gnp_random_graph(120, 8 / 120, seed=5)


@pytest.fixture
def traced_events(graph, tmp_path):
    path = tmp_path / "run.jsonl"
    runtime.run("pagerank", graph, 4, seed=1, engine="vector", trace=path)
    return read_trace(path)


def synthetic_events():
    """A hand-built trace exercising every exporter branch."""
    return [
        {"event": "trace_start", "schema": 1, "unix_time": 1.0},
        {"event": "run_start", "algo": "pagerank", "engine": "vector",
         "n": 100, "m": 400, "k": 4, "bandwidth": 32, "at": 0.0},
        {"event": "phase", "op": "exchange", "label": "ranks",
         "at": 0.010, "wall_s": 0.008, "driver_s": 0.002,
         "rounds": 2, "bits": 64, "segments": {"pack_s": 0.003,
                                               "apply_s": 0.004}},
        # Segments summed across workers exceed the wall: args-only.
        {"event": "phase", "op": "map_machines", "label": "step",
         "at": 0.020, "wall_s": 0.009, "driver_s": 0.0,
         "segments": {"kernel_s": 0.030, "ship_s": 0.001}},
        {"event": "run_end", "algo": "pagerank", "cached": False,
         "rounds": 12, "phases": 2, "wall_s": 0.021, "setup_s": 0.001,
         "at": 0.021},
    ]


class TestChromeExport:
    def test_real_trace_is_schema_valid(self, traced_events):
        doc = export_chrome(traced_events)
        validate_chrome_trace(doc)  # must not raise
        names = {e["name"] for e in doc["traceEvents"]}
        assert any(name.startswith("exchange") for name in names)

    def test_round_trips_through_json(self, traced_events, tmp_path):
        out = write_export(traced_events, "chrome", tmp_path / "t.json")
        doc = json.loads(out.read_text())
        validate_chrome_trace(doc)
        assert doc["otherData"]["exporter"] == "repro trace export"
        assert doc["otherData"]["trace_schema"] == traced_events[0]["schema"]

    def test_process_engine_trace_is_schema_valid(self, graph, tmp_path):
        path = tmp_path / "proc.jsonl"
        runtime.run("pagerank", graph, 4, seed=1, engine="process",
                    workers=2, trace=path)
        doc = export_chrome(read_trace(path))
        validate_chrome_trace(doc)

    def test_multi_run_trace_gets_one_track_per_run(self, graph):
        tracer = Tracer()
        for algo in ("pagerank", "triangles"):
            runtime.run(algo, graph, 4, seed=1, engine="vector",
                        trace=tracer)
        doc = export_chrome(tracer.events)
        validate_chrome_trace(doc)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(meta) == 2
        assert {e["tid"] for e in meta} == {1, 2}
        track_names = [e["args"]["name"] for e in meta]
        assert any("pagerank" in name for name in track_names)
        assert any("triangles" in name for name in track_names)

    def test_synthetic_layout(self):
        doc = export_chrome(synthetic_events())
        validate_chrome_trace(doc)
        by_name = {e["name"]: e for e in doc["traceEvents"]
                   if e["ph"] == "X"}
        run = by_name["pagerank"]
        assert run["cat"] == "run"
        assert run["args"]["engine"] == "vector" and run["args"]["k"] == 4
        # driver slice sits immediately before its phase.
        driver = by_name["driver:ranks"]
        phase = by_name["exchange:ranks"]
        assert driver["ts"] + driver["dur"] == pytest.approx(phase["ts"])
        # Fitting segments become child slices laid out sequentially.
        pack, apply = by_name["pack_s"], by_name["apply_s"]
        assert pack["ts"] == pytest.approx(phase["ts"])
        assert apply["ts"] == pytest.approx(pack["ts"] + pack["dur"])
        # Oversubscribed worker segments stay in args, off the timeline.
        assert "kernel_s" not in by_name
        step = by_name["map_machines:step"]
        assert step["args"]["segments"]["kernel_s"] == 0.030

    def test_phase_before_any_run_start_lands_in_a_track(self):
        events = [
            {"event": "trace_start", "schema": 1},
            {"event": "phase", "op": "exchange", "label": "bare",
             "at": 0.005, "wall_s": 0.005, "driver_s": 0.0},
        ]
        doc = export_chrome(events)
        validate_chrome_trace(doc)
        assert any(e["name"] == "exchange:bare" for e in doc["traceEvents"])


class TestValidator:
    def test_rejects_non_object(self):
        with pytest.raises(TraceError, match="traceEvents"):
            validate_chrome_trace([])

    def test_rejects_negative_ts(self):
        doc = {"traceEvents": [
            {"name": "x", "ph": "X", "ts": -1.0, "dur": 1.0,
             "pid": 1, "tid": 1},
        ]}
        with pytest.raises(TraceError, match="non-negative"):
            validate_chrome_trace(doc)

    def test_rejects_unsupported_phase_type(self):
        doc = {"traceEvents": [
            {"name": "x", "ph": "B", "ts": 0, "dur": 0, "pid": 1, "tid": 1},
        ]}
        with pytest.raises(TraceError, match="unsupported ph"):
            validate_chrome_trace(doc)

    def test_rejects_overlapping_slices_on_one_track(self):
        doc = {"traceEvents": [
            {"name": "a", "ph": "X", "ts": 0.0, "dur": 10.0,
             "pid": 1, "tid": 1},
            {"name": "b", "ph": "X", "ts": 5.0, "dur": 10.0,
             "pid": 1, "tid": 1},
        ]}
        with pytest.raises(TraceError, match="overlaps"):
            validate_chrome_trace(doc)

    def test_accepts_nesting_and_cross_track_overlap(self):
        doc = {"traceEvents": [
            {"name": "outer", "ph": "X", "ts": 0.0, "dur": 10.0,
             "pid": 1, "tid": 1},
            {"name": "inner", "ph": "X", "ts": 2.0, "dur": 4.0,
             "pid": 1, "tid": 1},
            # Same window on another track: fine, tracks are independent.
            {"name": "other", "ph": "X", "ts": 5.0, "dur": 10.0,
             "pid": 1, "tid": 2},
        ]}
        validate_chrome_trace(doc)


class TestSpeedscopeExport:
    def test_real_trace_structure(self, traced_events, tmp_path):
        out = write_export(traced_events, "speedscope", tmp_path / "s.json")
        doc = json.loads(out.read_text())
        assert doc["$schema"].startswith("https://www.speedscope.app")
        assert len(doc["profiles"]) == 1
        profile = doc["profiles"][0]
        assert profile["type"] == "evented"
        assert profile["unit"] == "seconds"
        assert profile["startValue"] <= profile["endValue"]
        frames = doc["shared"]["frames"]
        for event in profile["events"]:
            assert event["type"] in ("O", "C")
            assert 0 <= event["frame"] < len(frames)

    def test_events_balance_and_never_step_backwards(self, traced_events):
        doc = export_speedscope(traced_events)
        for profile in doc["profiles"]:
            stack = []
            last_at = None
            for event in profile["events"]:
                if last_at is not None:
                    assert event["at"] >= last_at
                last_at = event["at"]
                if event["type"] == "O":
                    stack.append(event["frame"])
                else:
                    assert stack.pop() == event["frame"]
            assert stack == []

    def test_synthetic_frames(self):
        doc = export_speedscope(synthetic_events())
        names = [f["name"] for f in doc["shared"]["frames"]]
        assert "exchange:ranks" in names
        assert "driver:ranks" in names
        assert "pack_s" in names
        assert "kernel_s" not in names  # oversubscribed: args-only


class TestDispatchAndPaths:
    def test_unknown_format_raises(self):
        with pytest.raises(TraceError, match="unknown export format"):
            export_trace(synthetic_events(), "flamegraph")
        assert EXPORT_FORMATS == ("chrome", "speedscope")

    def test_default_export_path(self, tmp_path):
        assert default_export_path(tmp_path / "run.jsonl", "chrome") == (
            tmp_path / "run.chrome.json"
        )
        assert default_export_path("t.json", "speedscope") == (
            default_export_path("t", "speedscope")
        )

    def test_cli_export_round_trip(self, graph, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "cli.jsonl"
        runtime.run("triangles", graph, 4, seed=1, trace=trace)
        out = tmp_path / "cli.chrome.json"
        assert main(["trace", "export", str(trace), "--format", "chrome",
                     "--out", str(out)]) == 0
        validate_chrome_trace(json.loads(out.read_text()))
        assert str(out) in capsys.readouterr().out
