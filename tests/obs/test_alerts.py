"""AlertRule / AlertEngine unit tests (no daemon required)."""

import json

import pytest

from repro.obs.alerts import (
    AlertEngine,
    AlertRule,
    default_rules,
    jsonl_sink,
    load_rules,
    resolve_alert_rules,
    stderr_sink,
)
from repro.obs.alerts import ALERT_RULES_ENV, AlertError


def rule(**overrides):
    base = dict(name="err", metric="serve.error_rate", threshold=0.5,
                op=">", sustain_s=0.0, severity="critical")
    base.update(overrides)
    return AlertRule(**base)


class TestRuleValidation:
    def test_round_trips_as_dict(self):
        r = rule(description="too many failures")
        assert AlertRule(**r.as_dict()) == r

    @pytest.mark.parametrize("bad", [
        {"name": ""},
        {"metric": ""},
        {"op": "=="},
        {"severity": "fatal"},
        {"sustain_s": -1.0},
    ])
    def test_rejects_malformed_fields(self, bad):
        with pytest.raises(AlertError):
            rule(**bad)

    def test_default_rules_are_valid_and_unique(self):
        rules = default_rules()
        assert len({r.name for r in rules}) == len(rules)
        assert all(r.metric.startswith("serve.") for r in rules)


class TestLoadRules:
    def test_loads_a_json_file(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({"rules": [
            {"name": "latency", "metric": "serve.latency_p99_s",
             "threshold": 2.0, "op": ">=", "severity": "warning"},
        ]}))
        rules = load_rules(path)
        assert len(rules) == 1 and rules[0].name == "latency"

    def test_bare_list_form(self):
        rules = load_rules([{"name": "a", "metric": "x.y", "threshold": 1}])
        assert rules[0].metric == "x.y"

    def test_rejects_unknown_fields_and_duplicates(self):
        with pytest.raises(AlertError, match="unknown fields"):
            load_rules([{"name": "a", "metric": "x", "threshold": 1,
                         "wat": True}])
        with pytest.raises(AlertError, match="unique"):
            load_rules([{"name": "a", "metric": "x", "threshold": 1},
                        {"name": "a", "metric": "y", "threshold": 2}])

    def test_resolve_consults_the_environment(self, tmp_path, monkeypatch):
        monkeypatch.delenv(ALERT_RULES_ENV, raising=False)
        assert resolve_alert_rules(None) == []
        monkeypatch.setenv(ALERT_RULES_ENV, "default")
        assert resolve_alert_rules(None) == default_rules()
        path = tmp_path / "rules.json"
        path.write_text(json.dumps([{"name": "a", "metric": "x",
                                     "threshold": 1}]))
        monkeypatch.setenv(ALERT_RULES_ENV, str(path))
        assert resolve_alert_rules(None)[0].name == "a"

    def test_resolve_passthrough_and_disable(self):
        rules = default_rules()
        assert resolve_alert_rules(rules) == rules
        assert resolve_alert_rules("none") == []
        assert resolve_alert_rules("off") == []


class TestEngineStateMachine:
    def test_fires_then_resolves(self):
        metrics = {"serve": {"error_rate": 0.9}}
        engine = AlertEngine([rule()], lambda: metrics)
        events = engine.evaluate(now=100.0)
        assert [e["event"] for e in events] == ["fire"]
        assert engine.status()["active"] == ["err"]
        # Still breaching: no duplicate fire.
        assert engine.evaluate(now=101.0) == []
        metrics["serve"]["error_rate"] = 0.0
        events = engine.evaluate(now=102.0)
        assert [e["event"] for e in events] == ["resolve"]
        status = engine.status()
        assert status["active"] == []
        assert status["resolved"] == ["err"]
        assert status["rules"][0]["fired_at"] == 100.0
        assert status["rules"][0]["resolved_at"] == 102.0

    def test_sustain_window_gates_the_fire(self):
        metrics = {"serve": {"error_rate": 0.9}}
        engine = AlertEngine([rule(sustain_s=10.0)], lambda: metrics)
        assert engine.evaluate(now=0.0) == []     # breach starts
        assert engine.evaluate(now=5.0) == []     # not sustained yet
        events = engine.evaluate(now=10.0)        # 10s continuous breach
        assert [e["event"] for e in events] == ["fire"]

    def test_clean_evaluation_resets_the_sustain_clock(self):
        metrics = {"serve": {"error_rate": 0.9}}
        engine = AlertEngine([rule(sustain_s=10.0)], lambda: metrics)
        engine.evaluate(now=0.0)
        metrics["serve"]["error_rate"] = 0.0
        engine.evaluate(now=5.0)                  # breach interrupted
        metrics["serve"]["error_rate"] = 0.9
        assert engine.evaluate(now=9.0) == []
        assert engine.evaluate(now=14.0) == []    # only 5s of new breach
        assert [e["event"] for e in engine.evaluate(now=19.0)] == ["fire"]

    def test_missing_or_none_metric_never_breaches(self):
        engine = AlertEngine(
            [rule(metric="serve.error_rate"), rule(name="other",
                                                   metric="no.such.path")],
            lambda: {"serve": {"error_rate": None}},
        )
        assert engine.evaluate(now=0.0) == []
        assert engine.status()["active"] == []

    def test_none_resolves_an_active_alert(self):
        metrics = {"serve": {"error_rate": 0.9}}
        engine = AlertEngine([rule()], lambda: metrics)
        engine.evaluate(now=0.0)
        metrics["serve"]["error_rate"] = None  # traffic drained away
        events = engine.evaluate(now=1.0)
        assert [e["event"] for e in events] == ["resolve"]

    def test_snapshot_failure_does_not_kill_the_engine(self):
        def boom():
            raise RuntimeError("source mid-teardown")

        engine = AlertEngine([rule()], boom)
        assert engine.evaluate(now=0.0) == []
        assert engine.evaluations == 1

    def test_ops_and_bool_coercion(self):
        engine = AlertEngine(
            [rule(name="lo", metric="m.v", op="<", threshold=1.0),
             rule(name="flag", metric="m.closed", op=">=", threshold=1.0)],
            lambda: {"m": {"v": 0.5, "closed": True}},
        )
        events = engine.evaluate(now=0.0)
        assert sorted(e["rule"] for e in events) == ["flag", "lo"]

    def test_duplicate_rule_names_rejected(self):
        with pytest.raises(AlertError, match="unique"):
            AlertEngine([rule(), rule()], dict)


class TestSinksAndGauges:
    def test_events_reach_sinks_and_sink_errors_are_swallowed(self, tmp_path):
        seen = []

        def bad_sink(event):
            raise RuntimeError("sink down")

        log = tmp_path / "alerts.jsonl"
        engine = AlertEngine(
            [rule()], lambda: {"serve": {"error_rate": 0.9}},
            sinks=(bad_sink, seen.append, jsonl_sink(log)),
        )
        engine.evaluate(now=0.0)
        assert [e["event"] for e in seen] == ["fire"]
        lines = [json.loads(line) for line in log.read_text().splitlines()]
        assert lines[0]["rule"] == "err" and lines[0]["event"] == "fire"

    def test_stderr_sink_formats_the_event(self, capsys):
        engine = AlertEngine([rule()], lambda: {"serve": {"error_rate": 0.9}},
                             sinks=(stderr_sink,))
        engine.evaluate(now=0.0)
        err = capsys.readouterr().err
        assert "fire err" in err and "serve.error_rate" in err

    def test_prometheus_gauge_tracks_active_state(self):
        metrics = {"serve": {"error_rate": 0.9}}
        engine = AlertEngine([rule()], lambda: metrics)
        assert 'repro_alert_active{rule="err",severity="critical"} 0' in (
            engine.prometheus_lines()
        )
        engine.evaluate(now=0.0)
        assert 'repro_alert_active{rule="err",severity="critical"} 1' in (
            engine.prometheus_lines()
        )
