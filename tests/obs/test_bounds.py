"""BoundReport tests: closed-form envelopes vs measured metrics."""

import json
import math
from types import SimpleNamespace

import numpy as np
import pytest

import repro
from repro import runtime
from repro._util import polylog
from repro.kmachine.metrics import Metrics
from repro.obs.bounds import compute_bound_report


def make_metrics(k=4, bandwidth=32, link_bits=96, label="phase"):
    met = Metrics(k=k, bandwidth=bandwidth)
    bits = np.zeros((k, k), dtype=np.int64)
    msgs = np.zeros((k, k), dtype=np.int64)
    bits[0, 1] = link_bits
    msgs[0, 1] = 3
    met.record_phase(bits, msgs, label=label)
    return met


class TestClosedForm:
    """sorting's theorem is Θ̃(n/k²): both sides are closed-form."""

    def test_envelope_is_core_times_polylog(self):
        rng = np.random.default_rng(3)
        values = rng.random(4096)
        rep = runtime.run("sorting", values, 4, seed=1, engine="vector")
        report = rep.bound_report
        assert report is not None
        n, k = len(values), 4
        assert report.upper_bound_core == pytest.approx(n / k**2)
        assert report.polylog_slack == float(polylog(n))
        assert report.upper_bound_rounds == pytest.approx(
            (n / k**2) * polylog(n)
        )
        assert report.polylog_slack == 32 * math.ceil(math.log2(n))

    def test_measured_sits_inside_the_envelope(self):
        values = np.random.default_rng(3).random(4096)
        rep = runtime.run("sorting", values, 4, seed=1, engine="vector")
        report = rep.bound_report
        assert report.measured_rounds == rep.rounds
        assert report.within_envelope is True
        assert report.above_lower_bound is True
        assert report.ok is True

    def test_heaviest_phase_comes_from_the_phase_log(self):
        met = make_metrics(link_bits=96, label="heavy")
        spec = SimpleNamespace(name="stub", bounds="Õ(n/k²)",
                               lower_bound=None, lower_bound_extra=None,
                               upper_bound=None)
        report = compute_bound_report(spec, n=100, k=4, bandwidth=32,
                                      metrics=met)
        assert report.measured_max_link_bits == 96
        assert report.heaviest_phase == "heavy"
        assert report.within_envelope is None
        assert report.ok is True  # no declared bound, nothing violated


class TestViolations:
    def test_exceeding_the_envelope_flags_not_ok(self):
        met = make_metrics(k=4, bandwidth=1, link_bits=10**9)
        spec = SimpleNamespace(
            name="stub", bounds="Õ(1)",
            lower_bound=None, lower_bound_extra=None,
            upper_bound=lambda n, k, bandwidth, m=None: 1.0,
        )
        report = compute_bound_report(spec, n=64, k=4, bandwidth=1,
                                      metrics=met)
        assert report.within_envelope is False
        assert report.ok is False
        assert any("EXCEEDS" in value for _, value in report.rows())

    def test_below_lower_bound_flags_not_ok(self):
        met = make_metrics(k=4, bandwidth=10**9, link_bits=1)  # 1 round
        spec = SimpleNamespace(
            name="stub", bounds="Ω(1000)",
            lower_bound=lambda n, k, bandwidth: 1000.0,
            lower_bound_extra=None, upper_bound=None,
        )
        report = compute_bound_report(spec, n=64, k=4, bandwidth=10**9,
                                      metrics=met)
        assert report.above_lower_bound is False
        assert report.ok is False
        assert any("BELOW" in value for _, value in report.rows())

    def test_lower_bound_extra_threads_the_result_through(self):
        met = make_metrics()
        seen = {}

        def lower(n, k, bandwidth, t=1):
            seen["t"] = t
            return 0.0

        spec = SimpleNamespace(
            name="stub", bounds="Ω(t)", lower_bound=lower,
            lower_bound_extra=lambda r: {"t": r.count}, upper_bound=None,
        )
        compute_bound_report(spec, n=64, k=4, bandwidth=32, metrics=met,
                             result=SimpleNamespace(count=17))
        assert seen["t"] == 17

    def test_out_of_domain_bounds_are_omitted_not_fatal(self):
        # The paper's theorems state domains (e.g. PageRank's information
        # cost needs n >= 5); runs outside them still deserve a report.
        def raises(*a, **kw):
            raise ValueError("out of domain")

        spec = SimpleNamespace(
            name="stub", bounds="Õ(n/k²)", lower_bound=raises,
            lower_bound_extra=None, upper_bound=raises,
        )
        report = compute_bound_report(
            spec, n=4, k=2, bandwidth=32, metrics=make_metrics(k=2)
        )
        assert report.lower_bound_rounds is None
        assert report.upper_bound_rounds is None
        assert report.ok is True


class TestSerialization:
    def test_as_dict_is_json_ready(self):
        values = np.random.default_rng(3).random(1024)
        rep = runtime.run("sorting", values, 4, seed=1, engine="vector")
        payload = json.loads(json.dumps(rep.bound_report.as_dict()))
        assert payload["algo"] == "sorting"
        assert payload["ok"] is True
        assert payload["measured_rounds"] == rep.rounds

    def test_rows_are_string_pairs(self):
        g = repro.gnp_random_graph(80, 0.1, seed=2)
        rep = runtime.run("pagerank", g, 4, seed=1, engine="vector")
        rows = rep.bound_report.rows()
        assert rows and all(
            isinstance(label, str) and isinstance(value, str)
            for label, value in rows
        )
        labels = [label for label, _ in rows]
        assert "theorem" in labels and "heaviest link" in labels

    def test_every_registered_graph_family_declares_an_upper_bound(self):
        for name in runtime.available():
            spec = runtime.get_spec(name)
            assert spec.upper_bound is not None, name
