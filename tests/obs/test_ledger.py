"""Communication-ledger tests: per-phase budgets vs measured metrics."""

import json
from types import SimpleNamespace

import numpy as np
import pytest

import repro
from repro import runtime
from repro._util import polylog
from repro.kmachine.metrics import Metrics
from repro.obs.ledger import LedgerReport, compute_ledger_report


def make_metrics(k=4, bandwidth=32, phases=((96, 3),), labels=None):
    met = Metrics(k=k, bandwidth=bandwidth)
    for index, (link_bits, msgs_count) in enumerate(phases):
        bits = np.zeros((k, k), dtype=np.int64)
        msgs = np.zeros((k, k), dtype=np.int64)
        bits[0, 1] = link_bits
        msgs[0, 1] = msgs_count
        label = labels[index] if labels else f"phase-{index}"
        met.record_phase(bits, msgs, label=label)
    return met


def stub_spec(upper=None, name="stub"):
    return SimpleNamespace(name=name, upper_bound=upper)


class TestBudgets:
    def test_round_budget_is_core_times_polylog_times_slack(self):
        met = make_metrics()
        spec = stub_spec(upper=lambda n, k, bandwidth, m=None: n / k**2)
        report = compute_ledger_report(
            spec, n=1024, k=4, bandwidth=32, metrics=met
        )
        expected = (1024 / 16) * polylog(1024)
        assert report.round_budget == pytest.approx(expected)
        assert report.bits_budget == pytest.approx(expected * 32)
        assert report.slack == 1.0
        assert report.polylog_slack == float(polylog(1024))

    def test_slack_scales_the_budget(self):
        met = make_metrics()
        spec = stub_spec(upper=lambda n, k, bandwidth, m=None: n / k**2)
        base = compute_ledger_report(spec, n=1024, k=4, bandwidth=32,
                                     metrics=met)
        half = compute_ledger_report(spec, n=1024, k=4, bandwidth=32,
                                     metrics=met, slack=0.5)
        assert half.round_budget == pytest.approx(base.round_budget * 0.5)

    def test_core_below_one_clamps_to_polylog(self):
        met = make_metrics()
        spec = stub_spec(upper=lambda n, k, bandwidth, m=None: 0.001)
        report = compute_ledger_report(spec, n=1024, k=4, bandwidth=32,
                                       metrics=met)
        assert report.round_budget == pytest.approx(float(polylog(1024)))

    def test_no_upper_bound_means_no_budget_and_vacuous_ok(self):
        met = make_metrics(phases=((10**9, 5),))
        report = compute_ledger_report(
            stub_spec(upper=None), n=100, k=4, bandwidth=32, metrics=met
        )
        assert report.round_budget is None
        assert report.bits_budget is None
        assert report.ok is True
        assert not any(e.over_budget for e in report.entries)
        assert "no declared" in report.rows()[0][1]

    def test_out_of_domain_upper_bound_disables_the_budget(self):
        def upper(n, k, bandwidth, m=None):
            raise ValueError("out of domain")

        met = make_metrics()
        report = compute_ledger_report(stub_spec(upper=upper), n=100, k=4,
                                       bandwidth=32, metrics=met)
        assert report.round_budget is None
        assert report.ok is True

    def test_rejects_non_positive_slack(self):
        met = make_metrics()
        with pytest.raises(ValueError, match="slack"):
            compute_ledger_report(stub_spec(), n=100, k=4, bandwidth=32,
                                  metrics=met, slack=0.0)


class TestEntries:
    def test_running_totals_and_labels(self):
        met = make_metrics(phases=((64, 2), (96, 3), (32, 1)),
                           labels=["a", "b", "c"])
        spec = stub_spec(upper=lambda n, k, bandwidth, m=None: n)
        report = compute_ledger_report(spec, n=1024, k=4, bandwidth=32,
                                       metrics=met)
        assert len(report.entries) == 3
        assert [e.label for e in report.entries] == ["a", "b", "c"]
        assert [e.cumulative_rounds for e in report.entries] == [
            2, 5, 6
        ]  # ceil(64/32)=2, +ceil(96/32)=3, +ceil(32/32)=1
        assert [e.cumulative_bits for e in report.entries] == [64, 160, 192]
        assert report.total_rounds == met.rounds
        assert report.total_bits == met.bits
        assert report.heaviest_entry.label == "b"

    def test_undersized_envelope_flags_the_offending_phase(self):
        met = make_metrics(phases=((64, 2), (96, 3), (32, 1)))
        spec = stub_spec(upper=lambda n, k, bandwidth, m=None: n)
        # Budget of ~3.5 rounds: phase 1 pushes cumulative rounds to 5.
        tiny = 3.5 / (1024 * polylog(1024))
        report = compute_ledger_report(spec, n=1024, k=4, bandwidth=32,
                                       metrics=met, slack=tiny)
        assert report.ok is False
        assert report.first_violation.index == 1
        # Once the cumulative budget is blown, every later phase stays
        # flagged: the run never comes back inside the envelope.
        assert [e.over_budget for e in report.entries] == [False, True, True]
        assert "BUDGET EXCEEDED at phase 1" in report.rows()[0][1]

    def test_heavy_link_check_is_independent_of_round_totals(self):
        # The bits check compares each phase's own heaviest link against
        # bits_budget; craft a phase log where rounds stay inside the
        # round budget but one link load alone exceeds the bits budget
        # (possible when metrics are merged across bandwidth contexts).
        from repro.kmachine.metrics import PhaseStats

        met = Metrics(k=4, bandwidth=1024)
        met.phase_log.append(PhaseStats(
            rounds=1, messages=4, bits=8192, max_link_bits=8192,
            max_machine_sent=4, max_machine_received=4, label="burst",
        ))
        spec = stub_spec(upper=lambda n, k, bandwidth, m=None: 4.0)
        tiny = 6 / (4.0 * polylog(64))  # round_budget=6, bits_budget=6144
        report = compute_ledger_report(spec, n=64, k=4, bandwidth=1024,
                                       metrics=met, slack=tiny)
        entry = report.entries[0]
        assert entry.cumulative_rounds <= report.round_budget
        assert entry.max_link_bits > report.bits_budget
        assert entry.over_budget is True


class TestRealRuns:
    """Default slack never false-positives on the shipped families."""

    @pytest.mark.parametrize("algo", ["pagerank", "mst", "triangles"])
    def test_shipped_families_stay_within_budget(self, algo):
        g = repro.gnp_random_graph(200, 0.05, seed=3)
        kwargs = {}
        if algo == "mst":
            kwargs["weights"] = np.random.default_rng(3).random(g.m)
        rep = runtime.run(algo, g, 4, seed=3, **kwargs)
        ledger = rep.ledger_report
        assert isinstance(ledger, LedgerReport)
        assert ledger.ok is True
        assert ledger.violations == ()
        assert len(ledger.entries) == rep.metrics.phases
        assert ledger.total_rounds == rep.rounds

    def test_cached_hit_still_carries_a_ledger(self, tmp_path, monkeypatch):
        from repro import workloads
        from repro.serve.results import RESULT_DB_ENV
        from repro.workloads import DATA_DIR_ENV

        monkeypatch.setenv(DATA_DIR_ENV, str(tmp_path / "data"))
        monkeypatch.setenv(RESULT_DB_ENV, str(tmp_path / "results.sqlite"))
        g = workloads.materialize("gnp:n=120,avg_deg=6,seed=5")
        first = runtime.run("triangles", g, 4, seed=5, result_cache=True)
        second = runtime.run("triangles", g, 4, seed=5, result_cache=True)
        assert second.cached is True
        assert second.ledger_report is not None
        assert second.ledger_report.ok is True
        assert (second.ledger_report.total_rounds
                == first.ledger_report.total_rounds)

    def test_traced_run_attaches_top_links(self):
        # mst accounts phases through account_phase, the entry point
        # that attaches per-phase top-link attributions to the trace.
        g = repro.gnp_random_graph(150, 0.06, seed=7)
        w = np.random.default_rng(7).random(g.m)
        rep = runtime.run("mst", g, 4, seed=7, trace=True, weights=w)
        ledger = rep.ledger_report
        attributed = [e for e in ledger.entries if e.top_links]
        assert attributed, "traced run attached no top_links to the ledger"
        for entry in attributed:
            src, dst, bits = entry.top_links[0]
            assert 0 <= src < 4 and 0 <= dst < 4
            assert bits <= entry.max_link_bits


class TestSerialization:
    def test_as_dict_is_json_ready_and_bounded(self):
        met = make_metrics(phases=[(96, 3)] * 40)
        spec = stub_spec(upper=lambda n, k, bandwidth, m=None: n)
        tiny = 1 / (1024 * polylog(1024))  # budget ~1 round: all 40 flagged
        report = compute_ledger_report(spec, n=1024, k=4, bandwidth=32,
                                       metrics=met, slack=tiny)
        doc = report.as_dict()
        json.dumps(doc)
        assert doc["phases"] == 40
        assert doc["ok"] is False
        assert doc["violation_count"] == 40
        assert len(doc["violations"]) == 20  # capped

    def test_rows_report_headroom(self):
        met = make_metrics()
        spec = stub_spec(upper=lambda n, k, bandwidth, m=None: n)
        report = compute_ledger_report(spec, n=1024, k=4, bandwidth=32,
                                       metrics=met)
        labels = [label for label, _ in report.rows()]
        assert labels == ["ledger", "ledger headroom"]
