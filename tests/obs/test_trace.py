"""Tracer unit tests: no-op contract, event schema, JSONL round-trip."""

import json

import pytest

import repro
from repro import runtime
from repro.kmachine import Cluster
from repro.obs.trace import (
    NULL_TRACER,
    TRACE_ENV,
    TRACE_SCHEMA_VERSION,
    NullTracer,
    TraceError,
    Tracer,
    read_trace,
    resolve_tracer,
)


@pytest.fixture
def graph():
    return repro.gnp_random_graph(120, 8 / 120, seed=5)


class TestNullTracer:
    def test_disabled_and_stateless(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.top_links == 0
        # The no-op path must stay allocation-free: no instance dict,
        # no per-call state.
        assert NullTracer.__slots__ == ()
        assert NULL_TRACER.emit({"event": "phase"}) is None
        assert NULL_TRACER.phase("exchange", "x", 0.1, segments={}) is None
        assert NULL_TRACER.close() is None

    def test_engines_default_to_the_shared_singleton(self):
        for engine in ("message", "vector"):
            with Cluster(k=4, n=1000, engine=engine) as cluster:
                assert cluster.engine.tracer is NULL_TRACER

    def test_untraced_run_attaches_no_tracer(self, graph):
        rep = runtime.run("pagerank", graph, 4, seed=1, engine="vector")
        assert rep.tracer is None


class TestTracerEvents:
    def test_in_memory_events_with_header(self):
        tracer = Tracer()
        assert tracer.enabled is True
        assert tracer.events[0]["event"] == "trace_start"
        assert tracer.events[0]["schema"] == TRACE_SCHEMA_VERSION

    def test_seq_monotonic_and_at_nondecreasing(self):
        tracer = Tracer()
        for i in range(5):
            tracer.emit({"event": "phase", "op": "exchange", "label": str(i)})
        stamped = tracer.events[1:]
        seqs = [e["seq"] for e in stamped]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        ats = [e["at"] for e in stamped]
        assert ats == sorted(ats)

    def test_phase_event_carries_stats(self):
        from repro.kmachine.metrics import PhaseStats

        tracer = Tracer()
        stats = PhaseStats(rounds=3, messages=7, bits=24, max_link_bits=24,
                           max_machine_sent=7, max_machine_received=7,
                           label="tokens")
        tracer.phase("exchange_batches", "tokens", 0.25,
                     segments={"pack_s": 0.1}, stats=stats,
                     top_links=[[0, 1, 24]])
        event = tracer.events[-1]
        assert event["rounds"] == 3 and event["bits"] == 24
        assert event["segments"] == {"pack_s": 0.1}
        assert event["top_links"] == [[0, 1, 24]]

    def test_driver_gap_attributed_to_phases(self):
        import time

        tracer = Tracer()
        # No mark yet: nothing to attribute (setup must never be charged).
        tracer.phase("account_phase", "pre", 0.0)
        assert tracer.events[-1]["driver_s"] == 0.0
        tracer.mark()
        time.sleep(0.02)
        tracer.phase("account_phase", "a", 0.0)
        assert tracer.events[-1]["driver_s"] >= 0.015
        # The mark advances with each phase: back-to-back phases don't
        # re-charge the same gap.
        tracer.phase("account_phase", "b", 0.0)
        assert tracer.events[-1]["driver_s"] < 0.015
        # run_end resets the mark so a shared tracer never charges
        # inter-run gaps to the next run's first phase.
        tracer.run_end(algo="x", cached=False, wall_s=0.0, setup_s=None)
        time.sleep(0.02)
        tracer.phase("account_phase", "c", 0.0)
        assert tracer.events[-1]["driver_s"] == 0.0

    def test_concurrent_emitters_keep_seq_order_and_sane_gaps(self, tmp_path):
        import threading

        path = tmp_path / "t.jsonl"
        with Tracer(path, keep_events=True) as tracer:
            tracer.mark()

            def emitter(label):
                for i in range(50):
                    tracer.phase("exchange", f"{label}/{i}", 0.0)

            threads = [threading.Thread(target=emitter, args=(t,))
                       for t in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # seq/at stamped under the same lock as the write: the JSONL is
        # in seq order with at nondecreasing, and every driver_s is a
        # non-negative gap (no racing reads of the shared mark).
        lines = [json.loads(line) for line in
                 path.read_text().strip().splitlines()]
        stamped = lines[1:]
        assert [e["seq"] for e in stamped] == list(range(1, 201))
        ats = [e["at"] for e in stamped]
        assert ats == sorted(ats)
        assert all(e["driver_s"] >= 0.0 for e in stamped)
        assert lines == tracer.events

    def test_file_tracer_writes_jsonl_and_close_is_idempotent(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(path) as tracer:
            tracer.emit({"event": "run_start", "algo": "x"})
        tracer.close()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["event"] == "trace_start"


class TestResolveTracer:
    def test_none_without_env_is_disabled(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV, raising=False)
        tracer, owned = resolve_tracer(None)
        assert tracer is NULL_TRACER and owned is False

    def test_none_with_env_opens_the_env_path(self, tmp_path, monkeypatch):
        path = tmp_path / "env.jsonl"
        monkeypatch.setenv(TRACE_ENV, str(path))
        tracer, owned = resolve_tracer(None)
        try:
            assert owned is True and tracer.path == path
        finally:
            tracer.close()

    def test_bool_and_instance_semantics(self):
        tracer, owned = resolve_tracer(True)
        assert tracer.enabled and owned is True
        tracer2, owned2 = resolve_tracer(tracer)
        assert tracer2 is tracer and owned2 is False
        null, owned3 = resolve_tracer(False)
        assert null is NULL_TRACER and owned3 is False


class TestTracedRuns:
    @pytest.mark.parametrize("engine", ["message", "vector"])
    def test_round_trip_schema(self, graph, tmp_path, engine):
        path = tmp_path / "run.jsonl"
        rep = runtime.run("pagerank", graph, 4, seed=1, engine=engine,
                          trace=path)
        assert rep.wall_seconds is not None and rep.wall_seconds > 0
        events = read_trace(path)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "trace_start"
        assert "run_start" in kinds and "run_end" in kinds
        phases = [e for e in events if e["event"] == "phase"]
        assert phases, "traced run emitted no phase events"
        for event in phases:
            assert event["wall_s"] >= 0
            assert event["op"] in ("exchange", "exchange_batches",
                                   "account_phase", "map_machines",
                                   "resident")
        end = next(e for e in events if e["event"] == "run_end")
        assert end["cached"] is False
        assert end["rounds"] == rep.rounds

    def test_phase_wall_covers_run_window(self, graph, tmp_path):
        from repro.obs import summarize_trace

        path = tmp_path / "cov.jsonl"
        runtime.run("pagerank", graph, 4, seed=1, engine="vector", trace=path)
        summary = summarize_trace(read_trace(path))
        # Acceptance at 1e6 scale asks for >= 90%; tiny runs are noisier
        # but the segments must still account for most of the window.
        assert summary["coverage"] is not None
        assert summary["coverage"] > 0.5

    def test_driver_attribution_covers_accounting_drivers(self, tmp_path):
        from repro.obs import summarize_trace

        # Connectivity's driver only *accounts* traffic (account_phase),
        # so without driver_s attribution its trace would carry ~no time.
        # Larger than the shared fixture so the superstep stream outweighs
        # timing noise and the model-free finalize tail.
        graph = repro.gnp_random_graph(3000, 8 / 3000, seed=5)
        path = tmp_path / "conn.jsonl"
        runtime.run("connectivity", graph, 4, seed=1, engine="vector",
                    trace=path)
        summary = summarize_trace(read_trace(path))
        assert summary["coverage"] is not None
        assert summary["coverage"] > 0.3
        assert sum(g["driver_s"] for g in summary["groups"]) > 0

    def test_process_engine_segments(self, graph, tmp_path):
        path = tmp_path / "proc.jsonl"
        runtime.run("pagerank", graph, 4, seed=1, engine="process", workers=2,
                    trace=path)
        events = read_trace(path)
        maps = [e for e in events
                if e["event"] == "phase" and e["op"] == "map_machines"
                and "ship_s" in (e.get("segments") or {})]
        assert maps, "process engine emitted no shipped map_machines phases"
        for event in maps:
            # assemble_s appears only on group-assembled supersteps.
            assert set(event["segments"]) - {"assemble_s"} == {
                "ship_s", "kernel_s", "pool_wait_s", "unpack_s"}
            assert all(v >= 0 for v in event["segments"].values())
        from repro.kmachine import resident_enabled
        if resident_enabled(None):  # legacy path (REPRO_RESIDENT=0): none
            assert any("assemble_s" in e["segments"] for e in maps), (
                "resident pagerank emitted no worker-assembled supersteps")

    def test_shared_tracer_spans_multiple_runs(self, graph):
        tracer = Tracer()
        for k in (3, 4):
            runtime.run("pagerank", graph, k, seed=1, engine="vector",
                        trace=tracer)
        starts = [e for e in tracer.events if e["event"] == "run_start"]
        ends = [e for e in tracer.events if e["event"] == "run_end"]
        assert len(starts) == 2 and len(ends) == 2


class TestReadTraceValidation:
    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event":"phase"}\n')
        with pytest.raises(TraceError, match="trace_start"):
            read_trace(path)

    def test_future_schema_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps(
            {"event": "trace_start", "schema": TRACE_SCHEMA_VERSION + 1}
        ) + "\n")
        with pytest.raises(TraceError, match="schema"):
            read_trace(path)

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"event":"trace_start","schema":1}\nnot json\n')
        with pytest.raises(TraceError, match="not valid JSON"):
            read_trace(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="cannot read"):
            read_trace(tmp_path / "nope.jsonl")
