"""Telemetry tests: registry, Prometheus rendering, MinuteRing, daemon."""

import gc
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs.registry import (
    MinuteRing,
    ObsRegistry,
    obs_registry,
    render_prometheus,
)


class TestObsRegistry:
    def test_register_collect_unregister(self):
        reg = ObsRegistry()

        def stats():
            return {"hits": 3}

        token = reg.register("store", stats)
        assert token == "store"
        assert reg.collect() == {"store": {"hits": 3}}
        reg.unregister(token)
        assert reg.collect() == {}

    def test_name_collision_gets_suffixed(self):
        reg = ObsRegistry()

        def a():
            return {"x": 1}

        def b():
            return {"x": 2}

        assert reg.register("s", a) == "s"
        assert reg.register("s", b) == "s-2"
        assert reg.collect() == {"s": {"x": 1}, "s-2": {"x": 2}}

    def test_sources_are_weak(self):
        reg = ObsRegistry()

        class Component:
            def stats(self):
                return {"alive": True}

        comp = Component()
        reg.register("comp", comp.stats)
        assert reg.collect() == {"comp": {"alive": True}}
        del comp
        gc.collect()
        assert reg.collect() == {}
        assert reg.sources() == ()

    def test_failing_source_is_isolated(self):
        reg = ObsRegistry()

        def bad():
            raise RuntimeError("mid-teardown")

        def good():
            return {"ok": 1}

        reg.register("bad", bad)
        reg.register("good", good)
        out = reg.collect()
        assert out["good"] == {"ok": 1}
        assert "error" in out["bad"]

    def test_components_register_into_the_global_registry(self, tmp_path):
        from repro.serve.results import ResultStore

        store = ResultStore(tmp_path / "r.sqlite")
        try:
            assert "result_store" in " ".join(obs_registry().sources())
        finally:
            store.close()
        from repro.workloads.cache import cache_stats

        assert "graph_cache" in obs_registry().sources()
        assert set(cache_stats()) >= {"hits", "misses", "builds", "stores",
                                      "evictions"}


class TestRenderPrometheus:
    def test_flattens_and_skips_strings(self):
        text = render_prometheus({
            "store": {"hits": 3, "path": "/tmp/x", "nested": {"p50": 0.25},
                      "closed": False},
        })
        assert "repro_store_hits 3" in text
        assert "repro_store_nested_p50 0.25" in text
        assert "repro_store_closed 0" in text
        assert "/tmp/x" not in text
        assert text.endswith("\n")

    def test_sanitizes_names(self):
        text = render_prometheus({"result-store": {"latency p50.s": 1}})
        assert "repro_result_store_latency_p50_s 1" in text


class TestMinuteRing:
    def test_outcomes_land_in_their_buckets(self):
        ring = MinuteRing()
        now = 1_000_000.0
        ring.observe(0.1, kind="hit", now=now)
        ring.observe(0.2, kind="executed", now=now)
        ring.observe(0.3, kind="error", now=now)
        ring.observe(0.4, kind="rejected", now=now)
        ring.observe(0.5, kind="timeout", now=now)
        (row,) = ring.rows()
        assert row["requests"] == 5
        assert row["hits"] == 1 and row["executed"] == 1
        assert row["errors"] == 1
        assert row["rejected"] == 1 and row["timeouts"] == 1

    def test_unknown_kind_raises(self):
        ring = MinuteRing()
        with pytest.raises(ValueError, match="unknown request kind"):
            ring.observe(0.6, kind="???", now=1_000_000.0)

    def test_latency_quantiles(self):
        ring = MinuteRing()
        now = 1_000_000.0
        for i in range(100):
            ring.observe(i / 100, now=now)
        (row,) = ring.rows()
        assert row["latency_p50_s"] == pytest.approx(0.50, abs=0.02)
        assert row["latency_p99_s"] == pytest.approx(0.99, abs=0.02)
        assert row["latency_max_s"] == pytest.approx(0.99)

    def test_ring_is_bounded_and_ordered(self):
        ring = MinuteRing(minutes=3)
        for minute in range(10):
            ring.observe(0.1, now=minute * 60.0)
        rows = ring.rows()
        assert len(rows) == 3
        assert [r["minute"] for r in rows] == [420, 480, 540]
        assert ring.rows(limit=1)[0]["minute"] == 540

    def test_stale_observation_never_evicts_the_newest(self):
        ring = MinuteRing(minutes=3)
        for minute in range(3, 6):
            ring.observe(0.1, now=minute * 60.0)
        # A clock step-back files into an older minute than anything
        # retained: the stale bucket is the one dropped, not the newest.
        ring.observe(0.1, now=0.0)
        assert [r["minute"] for r in ring.rows()] == [180, 240, 300]

    def test_sample_reservoir_is_bounded(self):
        ring = MinuteRing(max_samples=8)
        now = 1_000_000.0
        for _ in range(100):
            ring.observe(1.0, now=now)
        (row,) = ring.rows()
        assert row["requests"] == 100
        assert row["latency_max_s"] == 1.0

    def test_current_is_zero_when_idle(self):
        ring = MinuteRing()
        cur = ring.current(now=60.0)
        assert cur["requests"] == 0 and cur["minute"] == 60

    def test_per_algo_breakdowns(self):
        ring = MinuteRing()
        now = 1_000_000.0
        ring.observe(0.1, kind="executed", now=now, algo="pagerank")
        ring.observe(0.2, kind="hit", now=now, algo="pagerank")
        ring.observe(0.3, kind="error", now=now, algo="mst")
        ring.observe(0.4, kind="executed", now=now)  # unattributed
        (row,) = ring.rows()
        assert row["requests"] == 4
        algos = row["algos"]
        assert algos["pagerank"] == {
            "requests": 2, "hits": 1, "executed": 1, "errors": 0,
            "rejected": 0, "timeouts": 0}
        assert algos["mst"]["errors"] == 1 and algos["mst"]["requests"] == 1
        # Unattributed requests count in the bucket totals only.
        assert sum(a["requests"] for a in algos.values()) == 3

    def test_algo_labels_are_capped(self):
        ring = MinuteRing(max_algos=2)
        now = 1_000_000.0
        for name in ("a", "b", "c", "d", "a"):
            ring.observe(0.1, now=now, algo=name)
        (row,) = ring.rows()
        algos = row["algos"]
        assert set(algos) == {"a", "b", "other"}
        assert algos["a"]["requests"] == 2
        assert algos["other"]["requests"] == 2  # c and d folded

    def test_rows_without_algo_have_no_breakdown(self):
        ring = MinuteRing()
        ring.observe(0.1, now=1_000_000.0)
        (row,) = ring.rows()
        assert "algos" not in row

    def test_cap_boundary_is_exact(self):
        # Exactly max_algos distinct labels: all named, no "other".
        ring = MinuteRing(max_algos=3)
        now = 1_000_000.0
        for name in ("a", "b", "c"):
            ring.observe(0.1, now=now, algo=name)
        (row,) = ring.rows()
        assert set(row["algos"]) == {"a", "b", "c"}
        # The first label past the cap folds; labels seen before the cap
        # keep accruing under their own name.
        ring.observe(0.1, now=now, algo="d")
        ring.observe(0.1, now=now, algo="a")
        (row,) = ring.rows()
        assert set(row["algos"]) == {"a", "b", "c", "other"}
        assert row["algos"]["a"]["requests"] == 2
        assert row["algos"]["other"]["requests"] == 1

    def test_cap_is_per_bucket_not_global(self):
        ring = MinuteRing(max_algos=1)
        ring.observe(0.1, now=0.0, algo="a")
        ring.observe(0.1, now=0.0, algo="b")       # folded in minute 0
        ring.observe(0.1, now=60.0, algo="b")      # fresh bucket: named
        rows = ring.rows()
        assert set(rows[0]["algos"]) == {"a", "other"}
        assert set(rows[1]["algos"]) == {"b"}

    def test_quantiles_under_threaded_mixed_algo_storm(self):
        import threading

        # 8 threads x 64 observations = 512 samples: exactly the
        # reservoir cap, so the quantiles are over the full population.
        ring = MinuteRing(max_samples=512)
        now = 1_000_000.0
        threads = []

        def storm(t):
            for i in range(64):
                ring.observe((t * 64 + i) / 512, now=now,
                             kind="error" if t == 0 else "executed",
                             algo=f"algo-{t}")

        for t in range(8):
            threads.append(threading.Thread(target=storm, args=(t,)))
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        (row,) = ring.rows()
        assert row["requests"] == 512
        assert row["errors"] == 64 and row["executed"] == 448
        # Latencies form {0..511}/512 regardless of interleaving.
        assert row["latency_p50_s"] == pytest.approx(0.5, abs=0.01)
        assert row["latency_p99_s"] == pytest.approx(0.99, abs=0.01)
        assert row["latency_max_s"] == pytest.approx(511 / 512)
        # 8 labels, under the default cap: every one attributed exactly.
        algos = row["algos"]
        assert set(algos) == {f"algo-{t}" for t in range(8)}
        assert all(a["requests"] == 64 for a in algos.values())

    def test_window_merges_recent_buckets(self):
        ring = MinuteRing()
        ring.observe(0.1, kind="error", now=0.0)      # outside the window
        ring.observe(0.2, kind="executed", now=60.0)
        ring.observe(0.4, kind="error", now=120.0)
        win = ring.window(minutes=2, now=125.0)
        assert win["requests"] == 2
        assert win["errors"] == 1
        assert win["error_rate"] == pytest.approx(0.5)
        assert win["latency_max_s"] == pytest.approx(0.4)

    def test_window_error_rate_is_none_without_traffic(self):
        ring = MinuteRing()
        win = ring.window(minutes=2, now=1_000_000.0)
        assert win["requests"] == 0
        assert win["error_rate"] is None
        assert "latency_p50_s" not in win


DATASET = "gnp:n=120,avg_deg=5,seed=3"


@pytest.fixture(autouse=True)
def _isolated_caches(tmp_path, monkeypatch):
    from repro.serve import RESULT_DB_ENV
    from repro.workloads import DATA_DIR_ENV

    monkeypatch.setenv(DATA_DIR_ENV, str(tmp_path / "data"))
    monkeypatch.setenv(RESULT_DB_ENV, str(tmp_path / "results.sqlite"))


@pytest.fixture
def daemon():
    from repro.serve import ReproServer, ServeClient

    server = ReproServer(port=0)
    with server.start_in_thread() as handle:
        client = ServeClient(handle.host, handle.port)
        client.wait_until_ready()
        yield server, client


def _get(client, path):
    url = f"http://{client.host}:{client.port}{path}"
    with urllib.request.urlopen(url, timeout=30) as reply:
        return reply.status, reply.headers.get("Content-Type"), reply.read()


class TestDaemonTelemetry:
    def test_metrics_endpoint_serves_prometheus_text(self, daemon):
        server, client = daemon
        client.run("pagerank", dataset=DATASET, k=4, seed=1)
        status, content_type, body = _get(client, "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        text = body.decode()
        assert "repro_server_served 1" in text
        assert "repro_session_executed 1" in text
        assert "repro_serve_minute_requests 1" in text

    def test_status_history_returns_the_ring(self, daemon):
        server, client = daemon
        client.run("pagerank", dataset=DATASET, k=4, seed=1)
        client.run("pagerank", dataset=DATASET, k=4, seed=1)  # result-cache hit
        plain = client.status()
        assert "history" not in plain
        import json as _json

        status, _, body = _get(client, "/status?history=1")
        assert status == 200
        history = _json.loads(body)["history"]
        assert sum(row["requests"] for row in history) == 2
        assert sum(row["executed"] for row in history) == 1
        assert sum(row["hits"] for row in history) == 1
        assert any("latency_p50_s" in row for row in history)
        # Per-algo attribution rides along in the same rows.
        pagerank = [row["algos"]["pagerank"] for row in history
                    if "algos" in row]
        assert sum(a["requests"] for a in pagerank) == 2
        assert sum(a["hits"] for a in pagerank) == 1

    def test_run_response_carries_timing_and_bound(self, daemon):
        server, client = daemon
        report = client.run("pagerank", dataset=DATASET, k=4, seed=1)
        assert report["wall_seconds"] > 0
        assert report["first_superstep_seconds"] is not None
        bound = report["bound"]
        assert bound["algo"] == "pagerank"
        assert bound["ok"] is True
        assert bound["measured_rounds"] == report["rounds"]
        hit = client.run("pagerank", dataset=DATASET, k=4, seed=1)
        assert hit["cached"] is True
        assert hit["wall_seconds"] is not None
        assert hit["bound"]["measured_rounds"] == report["rounds"]

    def test_bad_requests_count_as_errors_in_the_ring(self, daemon):
        server, client = daemon
        url = f"http://{client.host}:{client.port}/run"
        request = urllib.request.Request(
            url, data=b'{"algo": "no-such-algo", "dataset": "%s", "k": 4}'
            % DATASET.encode(), method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(request)
        assert server.ring.current()["errors"] >= 1

    def test_telemetry_under_concurrent_load(self, daemon):
        server, client = daemon
        client.run("pagerank", dataset=DATASET, k=4, seed=1)  # warm the cache
        errors = []

        def hammer():
            try:
                for _ in range(3):
                    client.run("pagerank", dataset=DATASET, k=4, seed=1)
                    _get(client, "/metrics")
                    _get(client, "/status?history=1")
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        rows = server.ring.rows()
        total = sum(row["requests"] for row in rows)
        assert total == 13  # 1 warmup + 4 threads x 3 runs
        assert sum(row["hits"] for row in rows) == 12
        _, _, body = _get(client, "/metrics")
        assert b"repro_server_served 13" in body
