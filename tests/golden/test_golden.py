"""Golden regression tests for simulator round/message/bit counts.

The simulator's accounting is deterministic given ``(n, k, seed)``, so
any drift in recorded rounds, messages, or bits signals a semantic
change to an algorithm or to the engine layer — exactly the kind of
silent change these tests exist to catch.  Counts are engine-independent
by contract, and each case is checked on all three backends (per-object,
vectorized, and multiprocessing shard workers).

Regenerating
------------
After an *intentional* accounting change, regenerate the golden file and
commit it together with the change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/golden -q

With the flag set, the test rewrites ``golden_counts.json`` from the
current implementation and fails once with a reminder so regeneration
cannot silently pass in CI.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

import repro

GOLDEN_PATH = Path(__file__).resolve().parent / "golden_counts.json"
REGEN_ENV = "REPRO_REGEN_GOLDEN"

PAGERANK_CASES = [(200, 4, 11), (300, 8, 5)]
TRIANGLE_CASES = [(100, 8, 3), (120, 27, 9)]


def _pagerank_counts(n: int, k: int, seed: int, engine: str) -> dict:
    g = repro.gnp_random_graph(n, 8.0 / n, seed=seed)
    r = repro.distributed_pagerank(g, k=k, seed=seed, c=2, engine=engine)
    return {
        "rounds": r.rounds,
        "messages": r.metrics.messages,
        "bits": r.metrics.bits,
        "iterations": r.iterations,
    }


def _triangle_counts(n: int, k: int, seed: int, engine: str) -> dict:
    g = repro.gnp_random_graph(n, 0.3, seed=seed)
    r = repro.enumerate_triangles_distributed(g, k=k, seed=seed, engine=engine)
    return {
        "rounds": r.rounds,
        "messages": r.metrics.messages,
        "bits": r.metrics.bits,
        "triangles": r.count,
    }


def _compute_all() -> dict:
    out = {}
    for n, k, seed in PAGERANK_CASES:
        out[f"pagerank n={n} k={k} seed={seed}"] = _pagerank_counts(n, k, seed, "message")
    for n, k, seed in TRIANGLE_CASES:
        out[f"triangles n={n} k={k} seed={seed}"] = _triangle_counts(n, k, seed, "message")
    return out


def test_regenerate_golden_counts():
    if not os.environ.get(REGEN_ENV):
        pytest.skip(f"set {REGEN_ENV}=1 to regenerate {GOLDEN_PATH.name}")
    GOLDEN_PATH.write_text(json.dumps(_compute_all(), indent=2) + "\n")
    pytest.fail(
        f"regenerated {GOLDEN_PATH.name}; review the diff, commit it, and rerun "
        f"without {REGEN_ENV}"
    )


def _golden() -> dict:
    assert GOLDEN_PATH.exists(), (
        f"missing {GOLDEN_PATH.name}; run with {REGEN_ENV}=1 to create it"
    )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("engine", ["message", "vector", "process"])
@pytest.mark.parametrize("case", PAGERANK_CASES, ids=lambda c: f"n{c[0]}-k{c[1]}-s{c[2]}")
def test_pagerank_counts_match_golden(case, engine):
    if os.environ.get(REGEN_ENV):
        pytest.skip("regenerating")
    n, k, seed = case
    expected = _golden()[f"pagerank n={n} k={k} seed={seed}"]
    assert _pagerank_counts(n, k, seed, engine) == expected, (
        f"PageRank accounting drifted from golden (engine={engine}); if the "
        f"change is intentional, regenerate with {REGEN_ENV}=1"
    )


@pytest.mark.parametrize("engine", ["message", "vector", "process"])
@pytest.mark.parametrize("case", TRIANGLE_CASES, ids=lambda c: f"n{c[0]}-k{c[1]}-s{c[2]}")
def test_triangle_counts_match_golden(case, engine):
    if os.environ.get(REGEN_ENV):
        pytest.skip("regenerating")
    n, k, seed = case
    expected = _golden()[f"triangles n={n} k={k} seed={seed}"]
    assert _triangle_counts(n, k, seed, engine) == expected, (
        f"triangle accounting drifted from golden (engine={engine}); if the "
        f"change is intentional, regenerate with {REGEN_ENV}=1"
    )
