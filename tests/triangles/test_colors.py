"""Unit tests for color-triplet bookkeeping."""

import numpy as np
import pytest

from repro.core.triangles import colors as col
from repro.errors import AlgorithmError


class TestNumColors:
    def test_perfect_cubes(self):
        assert col.num_colors_for_machines(8) == 2
        assert col.num_colors_for_machines(27) == 3
        assert col.num_colors_for_machines(64) == 4

    def test_non_cubes_floor(self):
        assert col.num_colors_for_machines(9) == 2
        assert col.num_colors_for_machines(26) == 2
        assert col.num_colors_for_machines(63) == 3

    def test_minimum_one(self):
        assert col.num_colors_for_machines(2) == 1


class TestTripletIndexing:
    def test_round_trip(self):
        q = 4
        for a in range(q):
            for b in range(q):
                for c in range(q):
                    mid = col.machine_for_triplet(a, b, c, q)
                    assert col.triplet_for_machine(mid, q) == (a, b, c)

    def test_all_ids_distinct_and_in_range(self):
        q = 3
        ids = {
            col.machine_for_triplet(a, b, c, q)
            for a in range(q)
            for b in range(q)
            for c in range(q)
        }
        assert ids == set(range(q**3))

    def test_rejects_out_of_range_color(self):
        with pytest.raises(AlgorithmError):
            col.machine_for_triplet(0, 3, 0, 3)

    def test_rejects_bad_machine(self):
        with pytest.raises(AlgorithmError):
            col.triplet_for_machine(27, 3)

    def test_sorted_triplets_count(self):
        # Multisets of size 3 from q colors: C(q+2, 3).
        for q in (1, 2, 3, 4, 5):
            expected = q * (q + 1) * (q + 2) // 6
            assert len(col.sorted_triplets(q)) == expected

    def test_sorted_triplets_are_sorted(self):
        for a, b, c in col.sorted_triplets(4):
            assert a <= b <= c


class TestMachinesNeedingEdge:
    def test_exactly_q_machines(self):
        q = 4
        for cu in range(q):
            for cv in range(q):
                machines = col.machines_needing_edge(cu, cv, q)
                assert machines.size == q
                assert np.unique(machines).size == q

    def test_machines_contain_the_colors(self):
        q = 4
        for cu in range(q):
            for cv in range(q):
                for mid in col.machines_needing_edge(cu, cv, q):
                    trip = sorted(col.triplet_for_machine(int(mid), q))
                    multiset = list(trip)
                    for needed in sorted((cu, cv)):
                        assert needed in multiset
                        multiset.remove(needed)

    def test_every_sorted_triplet_covered_by_its_pairs(self):
        # The machine of triplet (a, b, c) is in machines_needing_edge for
        # each of its three corner pairs — otherwise triangles would miss
        # edges.
        q = 3
        for a, b, c in col.sorted_triplets(q):
            mid = col.machine_for_triplet(a, b, c, q)
            for pair in ((a, b), (a, c), (b, c)):
                assert mid in col.machines_needing_edge(pair[0], pair[1], q)

    def test_vectorized_matches_scalar(self):
        q = 5
        rng = np.random.default_rng(0)
        cu = rng.integers(0, q, size=100)
        cv = rng.integers(0, q, size=100)
        vec = col.machines_needing_edge_array(cu, cv, q)
        for e in range(100):
            scalar = col.machines_needing_edge(int(cu[e]), int(cv[e]), q)
            assert np.array_equal(np.sort(vec[e]), np.sort(scalar))

    def test_vectorized_shape(self):
        out = col.machines_needing_edge_array(np.array([0, 1]), np.array([1, 1]), 3)
        assert out.shape == (2, 3)
