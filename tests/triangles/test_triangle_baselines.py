"""Tests for the triangle-enumeration baselines (Klauck-style conversion,
broadcast) and their cost relation to Theorem 5."""

import numpy as np
import pytest

import repro
from repro.errors import AlgorithmError
from repro.graphs.triangles_ref import enumerate_triangles


class TestConversionBaseline:
    @pytest.mark.parametrize("k", [4, 8, 27])
    def test_exact_enumeration(self, k):
        g = repro.gnp_random_graph(50, 0.3, seed=1)
        res = repro.enumerate_triangles_conversion(g, k=k, seed=2)
        res.assert_no_duplicates()
        assert np.array_equal(res.triangles, enumerate_triangles(g))

    def test_dense_graph(self):
        g = repro.gnp_random_graph(40, 0.6, seed=3)
        res = repro.enumerate_triangles_conversion(g, k=8, seed=4)
        assert np.array_equal(res.triangles, enumerate_triangles(g))

    def test_empty_graph(self):
        g = repro.empty_graph(10)
        res = repro.enumerate_triangles_conversion(g, k=4, seed=5)
        assert res.count == 0

    def test_theorem5_beats_conversion_on_dense_inputs(self):
        # The headline comparison: Õ(m/k^{5/3}) vs Õ(n^{7/3}/k²).
        g = repro.gnp_random_graph(150, 0.5, seed=6)
        k, B = 27, 16
        ours = repro.enumerate_triangles_distributed(g, k=k, seed=7, bandwidth=B)
        conv = repro.enumerate_triangles_conversion(g, k=k, seed=7, bandwidth=B)
        assert ours.rounds < conv.rounds

    def test_conversion_traffic_is_m_times_cuberoot_n(self):
        g = repro.gnp_random_graph(64, 0.5, seed=8)
        res = repro.enumerate_triangles_conversion(g, k=8, seed=9)
        q = 4  # floor(64^{1/3})
        total = res.metrics.messages + res.metrics.local_messages
        assert total == g.m * q

    def test_rejects_directed(self):
        g = repro.path_graph(5, directed=True)
        with pytest.raises(AlgorithmError):
            repro.enumerate_triangles_conversion(g, k=4)


class TestBroadcastBaseline:
    @pytest.mark.parametrize("k", [2, 8])
    def test_exact_enumeration(self, k):
        g = repro.gnp_random_graph(40, 0.3, seed=10)
        res = repro.enumerate_triangles_broadcast(g, k=k, seed=11)
        assert np.array_equal(res.triangles, enumerate_triangles(g))

    def test_message_volume_is_m_times_k_minus_one(self):
        g = repro.gnp_random_graph(30, 0.3, seed=12)
        k = 6
        res = repro.enumerate_triangles_broadcast(g, k=k, seed=13)
        assert res.metrics.messages == g.m * (k - 1)

    def test_theorem5_beats_broadcast_at_scale(self):
        g = repro.gnp_random_graph(150, 0.5, seed=14)
        k, B = 64, 16
        ours = repro.enumerate_triangles_distributed(g, k=k, seed=15, bandwidth=B)
        bcast = repro.enumerate_triangles_broadcast(g, k=k, seed=15, bandwidth=B)
        assert ours.rounds < bcast.rounds

    def test_output_attributed_to_machine_zero(self):
        g = repro.gnp_random_graph(30, 0.4, seed=16)
        res = repro.enumerate_triangles_broadcast(g, k=4, seed=17)
        assert res.per_machine_output[0] == res.count
        assert res.per_machine_output[1:].sum() == 0
