"""Tests for the Theorem-5 distributed triangle enumeration."""

import numpy as np
import pytest

import repro
from repro.errors import AlgorithmError, PartitionError
from repro.graphs.triangles_ref import enumerate_open_triads, enumerate_triangles
from repro.kmachine.partition import random_vertex_partition


def assert_exact_enumeration(graph, result):
    expected = enumerate_triangles(graph)
    result.assert_no_duplicates()
    assert result.count == expected.shape[0]
    assert np.array_equal(result.triangles, expected)


class TestExactness:
    @pytest.mark.parametrize("k", [2, 8, 27, 30, 64])
    def test_gnp_sparse(self, k):
        g = repro.gnp_random_graph(60, 0.15, seed=1)
        res = repro.enumerate_triangles_distributed(g, k=k, seed=2)
        assert_exact_enumeration(g, res)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_gnp_dense(self, seed):
        g = repro.gnp_random_graph(40, 0.5, seed=seed)
        res = repro.enumerate_triangles_distributed(g, k=27, seed=seed + 10)
        assert_exact_enumeration(g, res)

    def test_complete_graph(self):
        g = repro.complete_graph(15)
        res = repro.enumerate_triangles_distributed(g, k=8, seed=3)
        assert_exact_enumeration(g, res)
        assert res.count == 455

    def test_triangle_free(self):
        g = repro.cycle_graph(30)
        res = repro.enumerate_triangles_distributed(g, k=8, seed=4)
        assert res.count == 0

    def test_planted_triangles(self):
        g = repro.planted_triangles_graph(60, 12, seed=5, noise_p=0.05)
        res = repro.enumerate_triangles_distributed(g, k=27, seed=6)
        assert_exact_enumeration(g, res)

    def test_star_no_triangles_with_heavy_hub(self):
        g = repro.star_graph(200)
        res = repro.enumerate_triangles_distributed(g, k=8, seed=7)
        assert res.count == 0

    def test_chung_lu_heavy_tail(self):
        g = repro.chung_lu_graph(150, exponent=2.2, avg_degree=8, seed=8)
        res = repro.enumerate_triangles_distributed(g, k=27, seed=9)
        assert_exact_enumeration(g, res)

    def test_empty_edge_set(self):
        g = repro.empty_graph(20)
        res = repro.enumerate_triangles_distributed(g, k=8, seed=10)
        assert res.count == 0

    def test_without_proxies_still_exact(self):
        g = repro.gnp_random_graph(50, 0.3, seed=11)
        res = repro.enumerate_triangles_distributed(g, k=27, seed=12, use_proxies=False)
        assert_exact_enumeration(g, res)

    def test_low_degree_threshold_still_exact(self):
        # Force the designation-request path for many vertices.
        g = repro.gnp_random_graph(50, 0.3, seed=13)
        res = repro.enumerate_triangles_distributed(g, k=8, seed=14, degree_threshold=4)
        assert_exact_enumeration(g, res)


class TestOutputStructure:
    def test_per_machine_output_sums_to_total(self):
        g = repro.gnp_random_graph(50, 0.4, seed=15)
        res = repro.enumerate_triangles_distributed(g, k=27, seed=16)
        assert res.per_machine_output.sum() == res.count

    def test_only_triplet_machines_output(self):
        g = repro.gnp_random_graph(50, 0.4, seed=17)
        k = 30  # q = 3, so only machines < 27 may output
        res = repro.enumerate_triangles_distributed(g, k=k, seed=18)
        assert np.all(res.per_machine_output[27:] == 0)

    def test_output_roughly_balanced_on_dense_input(self):
        # Corollary 2's premise: output per machine is balanced.
        g = repro.gnp_random_graph(64, 0.5, seed=19)
        res = repro.enumerate_triangles_distributed(g, k=8, seed=20)
        active = res.per_machine_output[: res.num_colors**3]
        assert active.max() < 6 * max(1, active.mean())

    def test_deterministic_given_seed(self):
        g = repro.gnp_random_graph(40, 0.3, seed=21)
        a = repro.enumerate_triangles_distributed(g, k=8, seed=22)
        b = repro.enumerate_triangles_distributed(g, k=8, seed=22)
        assert np.array_equal(a.triangles, b.triangles)
        assert a.rounds == b.rounds

    def test_metrics_consistent(self):
        g = repro.gnp_random_graph(40, 0.3, seed=23)
        res = repro.enumerate_triangles_distributed(g, k=8, seed=24)
        res.metrics.check_conservation()

    def test_rejects_directed(self):
        g = repro.path_graph(5, directed=True)
        with pytest.raises(AlgorithmError):
            repro.enumerate_triangles_distributed(g, k=8)

    def test_rejects_mismatched_partition(self):
        g = repro.cycle_graph(10)
        p = random_vertex_partition(9, 8, seed=0)
        with pytest.raises(PartitionError):
            repro.enumerate_triangles_distributed(g, k=8, partition=p)


class TestCommunicationBehaviour:
    def test_rerouting_volume_is_m_times_q(self):
        # Footnote 15: the proxy-to-triplet phase moves exactly m*k^{1/3}
        # edge copies (local copies included).
        g = repro.gnp_random_graph(60, 0.4, seed=25)
        k = 27
        res = repro.enumerate_triangles_distributed(g, k=k, seed=26)
        phase = next(p for p in res.metrics.phase_log if p.label == "triangles/to-triplets")
        assert phase.messages <= g.m * 3
        assert phase.messages >= g.m * 3 * (1 - 2 / k) - 10  # minus local copies

    def test_rounds_improve_with_k(self):
        g = repro.gnp_random_graph(140, 0.5, seed=27)
        B = 16
        r8 = repro.enumerate_triangles_distributed(g, k=8, seed=28, bandwidth=B).rounds
        r64 = repro.enumerate_triangles_distributed(g, k=64, seed=28, bandwidth=B).rounds
        # Theorem 5: ~ (k'/k)^{5/3} = 32x ideally; demand clearly superlinear.
        assert r8 > 12 * r64

    def test_proxies_help_on_heavy_tailed_graphs(self):
        # Ablation: without proxies the home machine of a heavy vertex
        # pushes all q copies of its edges itself.
        g = repro.star_graph(900)
        # add some triangles so the run isn't degenerate
        extra = np.array([[1, 2], [2, 3], [1, 3]])
        g2 = repro.Graph(n=900, edges=np.concatenate([g.edges, extra]))
        B = 16
        with_p = repro.enumerate_triangles_distributed(
            g2, k=64, seed=29, bandwidth=B, use_proxies=True
        )
        without = repro.enumerate_triangles_distributed(
            g2, k=64, seed=29, bandwidth=B, use_proxies=False
        )
        send_with = max(
            p.max_machine_sent for p in with_p.metrics.phase_log if "to-" in p.label
        )
        send_without = max(
            p.max_machine_sent for p in without.metrics.phase_log if "to-" in p.label
        )
        assert send_with < send_without

    def test_message_total_respects_corollary2_shape(self):
        # Round-optimal runs move Θ(m k^{1/3}) messages — superlinear in m.
        g = repro.gnp_random_graph(80, 0.5, seed=30)
        res = repro.enumerate_triangles_distributed(g, k=27, seed=31)
        assert res.metrics.messages + res.metrics.local_messages >= 3 * g.m


class TestOpenTriads:
    def test_matches_reference_enumeration(self):
        g = repro.gnp_random_graph(30, 0.2, seed=32)
        res = repro.enumerate_triangles_distributed(g, k=27, seed=33, enumerate_triads=True)
        expected = enumerate_open_triads(g)
        got = res.open_triads
        # Compare as sets of (center, sorted pair).
        def canon(arr):
            return {(int(c), *sorted((int(a), int(b)))) for c, a, b in arr}
        assert canon(got) == canon(expected)

    def test_triads_none_when_not_requested(self):
        g = repro.cycle_graph(10)
        res = repro.enumerate_triangles_distributed(g, k=8, seed=34)
        assert res.open_triads is None

    def test_triad_count_matches_closed_form(self):
        g = repro.gnp_random_graph(35, 0.25, seed=35)
        res = repro.enumerate_triangles_distributed(g, k=8, seed=36, enumerate_triads=True)
        assert res.open_triads.shape[0] == repro.count_open_triads(g)
