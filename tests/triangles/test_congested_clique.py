"""Tests for congested-clique triangle enumeration (Corollary 1's upper side)."""

import numpy as np
import pytest

import repro
from repro.core.lowerbounds.triangles import congested_clique_lower_bound
from repro.errors import AlgorithmError
from repro.graphs.triangles_ref import enumerate_triangles


class TestExactness:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_dense_gnp(self, seed):
        g = repro.gnp_random_graph(40, 0.5, seed=seed)
        res = repro.enumerate_triangles_congested_clique(g, seed=seed + 5)
        expected = enumerate_triangles(g)
        res.assert_no_duplicates()
        assert np.array_equal(res.triangles, expected)

    def test_sparse_gnp(self):
        g = repro.gnp_random_graph(60, 0.1, seed=2)
        res = repro.enumerate_triangles_congested_clique(g, seed=3)
        assert np.array_equal(res.triangles, enumerate_triangles(g))

    def test_complete_graph(self):
        g = repro.complete_graph(20)
        res = repro.enumerate_triangles_congested_clique(g, seed=4)
        assert res.count == 1140  # C(20, 3)

    def test_rejects_directed(self):
        g = repro.path_graph(5, directed=True)
        with pytest.raises(AlgorithmError):
            repro.enumerate_triangles_congested_clique(g)


class TestCost:
    def test_rounds_above_corollary1_bound(self):
        g = repro.gnp_random_graph(64, 0.5, seed=5)
        B = 12
        res = repro.enumerate_triangles_congested_clique(g, seed=6, bandwidth=B)
        assert res.rounds >= congested_clique_lower_bound(g.n, B)

    def test_rounds_grow_sublinearly_in_n(self):
        # Θ̃(n^{1/3}) rounds: growing n by 8x should grow rounds far less
        # than 8x (the edge volume grows 64x!).
        B = 12
        r_small = repro.enumerate_triangles_congested_clique(
            repro.gnp_random_graph(32, 0.5, seed=7), seed=8, bandwidth=B
        ).rounds
        r_big = repro.enumerate_triangles_congested_clique(
            repro.gnp_random_graph(256, 0.5, seed=9), seed=10, bandwidth=B
        ).rounds
        assert r_big < 8 * max(1, r_small)

    def test_machine_count_equals_n(self):
        g = repro.gnp_random_graph(30, 0.4, seed=11)
        res = repro.enumerate_triangles_congested_clique(g, seed=12)
        assert res.metrics.k == g.n
        assert res.per_machine_output.shape == (g.n,)
