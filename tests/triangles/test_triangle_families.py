"""Triangle enumeration across graph families."""

import numpy as np
import pytest

import repro
from repro.graphs.generators import barbell_graph, grid_graph, random_bipartite_graph
from repro.graphs.triangles_ref import enumerate_triangles


@pytest.mark.parametrize(
    "maker,expected_triangles",
    [
        (lambda: grid_graph(8, 8), 0),
        (lambda: random_bipartite_graph(20, 30, 0.2, seed=1), 0),
        (lambda: barbell_graph(8, bridge_length=2), 2 * 56),  # 2 * C(8,3)
        (lambda: repro.complete_graph(12), 220),
        (lambda: repro.planted_triangles_graph(45, 15, seed=2), 15),
    ],
    ids=["grid", "bipartite", "barbell", "complete", "planted"],
)
class TestKnownCounts:
    def test_distributed_count(self, maker, expected_triangles):
        g = maker()
        res = repro.enumerate_triangles_distributed(g, k=27, seed=3)
        assert res.count == expected_triangles

    def test_congested_clique_count(self, maker, expected_triangles):
        g = maker()
        res = repro.enumerate_triangles_congested_clique(g, seed=4)
        assert res.count == expected_triangles


class TestFamilyBehaviour:
    def test_barbell_triangles_are_in_cliques(self):
        g = barbell_graph(7, bridge_length=3)
        res = repro.enumerate_triangles_distributed(g, k=8, seed=5)
        for a, b, c in res.triangles:
            side = {x // 7 for x in (a, b, c) if x < 14}
            assert len(side) == 1  # never straddles the bridge

    def test_powerlaw_matches_reference(self):
        g = repro.chung_lu_graph(200, avg_degree=10, seed=6)
        res = repro.enumerate_triangles_distributed(g, k=27, seed=7)
        assert np.array_equal(res.triangles, enumerate_triangles(g))

    def test_triads_on_bipartite(self):
        # Bipartite graphs can be full of open triads despite zero
        # triangles.
        g = random_bipartite_graph(10, 15, 0.4, seed=8)
        res = repro.enumerate_triangles_distributed(g, k=8, seed=9, enumerate_triads=True)
        assert res.count == 0
        assert res.open_triads.shape[0] == repro.count_open_triads(g)

    def test_k_larger_than_n(self):
        g = repro.complete_graph(10)
        res = repro.enumerate_triangles_distributed(g, k=64, seed=10)
        assert res.count == 120

    def test_k_equals_two(self):
        g = repro.gnp_random_graph(30, 0.3, seed=11)
        res = repro.enumerate_triangles_distributed(g, k=2, seed=12)
        assert np.array_equal(res.triangles, enumerate_triangles(g))

    def test_subgraph_enumeration_on_grid(self):
        # A grid has exactly (rows-1)(cols-1) four-cycles and no K4s.
        g = grid_graph(6, 7)
        c4 = repro.enumerate_subgraphs_distributed(g, k=16, pattern="c4", seed=13)
        k4 = repro.enumerate_subgraphs_distributed(g, k=16, pattern="k4", seed=14)
        assert c4.count == 5 * 6
        assert k4.count == 0
