"""Tests for the runtime registry and the unified run() entry point.

Extends the PR-1 cross-engine equivalence suite to the registry: every
registered family, run through ``runtime.run()`` on a small fixed input,
must produce bit-identical results and accounting on both execution
backends — and must match a direct call to the family entry point.
"""

import numpy as np
import pytest

import repro
from repro import runtime
from repro.errors import AlgorithmError
from repro.kmachine.distgraph import DistributedGraph
from repro.kmachine.partition import random_vertex_partition
from repro.runtime.registry import AlgorithmSpec

ENGINES = ("message", "vector")
SEED = 17
K = 4

#: The small fixed graph every family runs on.
FIXED_GRAPH = repro.gnp_random_graph(48, 0.25, seed=5)
#: The fixed value array for "values" families.
FIXED_VALUES = np.random.default_rng(5).random(300)


def _input_for(name):
    return FIXED_VALUES if runtime.get_spec(name).input_kind == "values" else FIXED_GRAPH


def _metrics_signature(metrics):
    """Everything the equivalence contract promises about accounting."""
    return (
        metrics.rounds,
        metrics.phases,
        metrics.messages,
        metrics.bits,
        metrics.local_messages,
        metrics.sent_bits.tolist(),
        metrics.received_bits.tolist(),
        [(p.rounds, p.bits, p.max_link_bits, p.label) for p in metrics.phase_log],
    )


def _result_signature(name, result):
    """A bit-exact fingerprint of the family result."""
    if name in ("pagerank", "pagerank-baseline"):
        return (result.estimates.tobytes(), result.iterations)
    if name in ("triangles", "subgraphs"):
        return (result.triangles.tobytes(), result.per_machine_output.tobytes())
    if name == "mst":
        return (result.edges.tobytes(), result.total_weight, result.phases)
    if name == "connectivity":
        return (result.labels.tobytes(), result.num_components)
    if name == "sorting":
        return tuple(b.tobytes() for b in result.blocks)
    raise AssertionError(f"no signature rule for {name!r}")


class TestCrossEngineEquivalence:
    @pytest.mark.parametrize("name", runtime.available())
    def test_bit_identical_results_and_metrics_across_engines(self, name):
        reports = [
            runtime.run(name, _input_for(name), K, seed=SEED, engine=e)
            for e in ENGINES
        ]
        a, b = reports
        assert _result_signature(name, a.result) == _result_signature(name, b.result)
        assert _metrics_signature(a.metrics) == _metrics_signature(b.metrics)
        assert a.engine == "message" and b.engine == "vector"

    @pytest.mark.parametrize("name", runtime.available())
    def test_registry_run_matches_direct_call(self, name):
        rep = runtime.run(name, _input_for(name), K, seed=SEED)
        direct = {
            "pagerank": lambda: repro.distributed_pagerank(
                FIXED_GRAPH, k=K, seed=SEED, c=16.0
            ),
            "pagerank-baseline": lambda: repro.baseline_pagerank(
                FIXED_GRAPH, k=K, seed=SEED, c=16.0
            ),
            "triangles": lambda: repro.enumerate_triangles_distributed(
                FIXED_GRAPH, k=K, seed=SEED
            ),
            "subgraphs": lambda: repro.enumerate_subgraphs_distributed(
                FIXED_GRAPH, k=K, seed=SEED
            ),
            "mst": lambda: repro.distributed_mst(
                FIXED_GRAPH,
                np.random.default_rng(SEED).random(FIXED_GRAPH.m),
                k=K,
                seed=SEED,
            ),
            "connectivity": lambda: repro.connected_components_distributed(
                FIXED_GRAPH, k=K, seed=SEED
            ),
            "sorting": lambda: repro.distributed_sort(FIXED_VALUES, k=K, seed=SEED),
        }[name]()
        assert _result_signature(name, rep.result) == _result_signature(name, direct)
        assert _metrics_signature(rep.metrics) == _metrics_signature(direct.metrics)


class TestRunReport:
    def test_report_fields(self):
        rep = runtime.run("triangles", FIXED_GRAPH, K, seed=SEED)
        assert rep.name == "triangles"
        assert rep.k == K and rep.n == FIXED_GRAPH.n
        assert rep.rounds == rep.metrics.rounds
        assert rep.bandwidth == rep.metrics.bandwidth
        assert isinstance(rep.result, rep.spec.result_type)
        assert rep.distgraph is not None
        assert rep.distgraph.graph is FIXED_GRAPH

    def test_round_value_uses_spec_metric(self):
        rep = runtime.run("pagerank", FIXED_GRAPH, K, seed=SEED, c=2)
        assert rep.round_value() == rep.result.token_rounds()

    def test_lower_bound_evaluates_cookbook(self):
        rep = runtime.run("sorting", FIXED_VALUES, K, seed=SEED)
        lb = rep.lower_bound()
        assert lb is not None and lb > 0
        expected = repro.sorting_round_lower_bound(
            FIXED_VALUES.size, K, rep.bandwidth
        )
        assert lb == expected

    def test_lower_bound_none_when_spec_has_none(self):
        rep = runtime.run("subgraphs", FIXED_GRAPH, 16, seed=SEED)
        assert rep.lower_bound() is None

    def test_triangle_lower_bound_uses_measured_t(self):
        # Theorem 3's bound needs the output count; the spec threads it
        # through so sparse inputs don't report a bound above the rounds.
        g = repro.gnp_random_graph(300, 4 / 300, seed=2)
        rep = runtime.run("triangles", g, K, seed=SEED)
        expected = repro.triangle_round_lower_bound(
            g.n, K, rep.bandwidth, t=max(1, rep.result.count)
        )
        assert rep.lower_bound() == expected
        assert rep.lower_bound() <= rep.rounds

    def test_params_merge_defaults_and_overrides(self):
        rep = runtime.run("subgraphs", FIXED_GRAPH, 16, seed=SEED, pattern="c4")
        assert rep.params["pattern"] == "c4"
        rep2 = runtime.run("subgraphs", FIXED_GRAPH, 16, seed=SEED)
        assert rep2.params["pattern"] == "k4"


class TestRegistryAPI:
    def test_available_lists_all_families(self):
        names = runtime.available()
        assert names == tuple(sorted(names))
        for expected in (
            "connectivity",
            "mst",
            "pagerank",
            "pagerank-baseline",
            "sorting",
            "subgraphs",
            "triangles",
        ):
            assert expected in names

    def test_unknown_name_raises_with_listing(self):
        with pytest.raises(AlgorithmError, match="registered:"):
            runtime.get_spec("nope")
        with pytest.raises(AlgorithmError):
            runtime.run("nope", FIXED_GRAPH, K)

    def test_duplicate_register_rejected(self):
        spec = runtime.get_spec("pagerank")
        with pytest.raises(AlgorithmError, match="already registered"):
            runtime.register(spec)

    def test_spec_validates_input_kind(self):
        with pytest.raises(AlgorithmError):
            AlgorithmSpec(
                name="x",
                title="x",
                runner=lambda *a: None,
                input_kind="tensor",
                result_type=object,
                bounds="",
            )

    def test_specs_metadata_complete(self):
        for spec in runtime.specs():
            assert spec.title and spec.bounds
            assert spec.input_kind in ("graph", "values")
            assert isinstance(spec.result_type, type)


class TestPlacementAndCluster:
    def test_explicit_placement_is_used(self):
        part = random_vertex_partition(FIXED_GRAPH.n, K, seed=3)
        rep = runtime.run("triangles", FIXED_GRAPH, K, seed=SEED, placement=part)
        assert rep.distgraph.partition is part

    def test_prebuilt_distgraph_reused(self):
        part = random_vertex_partition(FIXED_GRAPH.n, K, seed=3)
        dg = DistributedGraph(FIXED_GRAPH, part)
        rep = runtime.run("pagerank", FIXED_GRAPH, K, seed=SEED, placement=dg, c=2)
        assert rep.distgraph is dg

    def test_mismatched_cluster_k_rejected(self):
        cluster = repro.Cluster(k=3, n=FIXED_GRAPH.n, seed=0)
        with pytest.raises(AlgorithmError):
            runtime.run("triangles", FIXED_GRAPH, K, cluster=cluster)

    def test_same_partition_same_results_across_engines(self):
        # With a pinned placement, everything downstream is a pure function
        # of the machine RNG streams — identical on both backends.
        part = random_vertex_partition(FIXED_GRAPH.n, K, seed=8)
        sigs = []
        for e in ENGINES:
            rep = runtime.run(
                "pagerank", FIXED_GRAPH, K, seed=SEED, engine=e, placement=part, c=2
            )
            sigs.append(_result_signature("pagerank", rep.result))
        assert sigs[0] == sigs[1]
