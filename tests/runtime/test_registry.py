"""Tests for the runtime registry and the unified run() entry point.

Extends the PR-1 cross-engine equivalence suite to the registry: every
registered family, run through ``runtime.run()`` on a small fixed input,
must produce bit-identical results and accounting on all three execution
backends (per-object, vectorized, and multiprocessing shard workers) —
and must match a direct call to the family entry point.
"""

import numpy as np
import pytest

import repro
from repro import runtime
from repro.errors import AlgorithmError, ModelError
from repro.kmachine.distgraph import (
    DistributedGraph,
    cached_distgraph,
    clear_distgraph_cache,
)
from repro.kmachine.partition import random_vertex_partition
from repro.runtime.registry import AlgorithmSpec

ENGINES = ("message", "vector", "process")
SEED = 17
K = 4

#: The small fixed graph every family runs on.
FIXED_GRAPH = repro.gnp_random_graph(48, 0.25, seed=5)
#: The fixed value array for "values" families.
FIXED_VALUES = np.random.default_rng(5).random(300)


def _input_for(name):
    return FIXED_VALUES if runtime.get_spec(name).input_kind == "values" else FIXED_GRAPH


def _metrics_signature(metrics):
    """Everything the equivalence contract promises about accounting."""
    return (
        metrics.rounds,
        metrics.phases,
        metrics.messages,
        metrics.bits,
        metrics.local_messages,
        metrics.sent_bits.tolist(),
        metrics.received_bits.tolist(),
        [(p.rounds, p.bits, p.max_link_bits, p.label) for p in metrics.phase_log],
    )


def _result_signature(name, result):
    """A bit-exact fingerprint of the family result."""
    if name in ("pagerank", "pagerank-baseline"):
        return (result.estimates.tobytes(), result.iterations)
    if name in (
        "triangles",
        "subgraphs",
        "congested-clique-triangles",
        "triangles-conversion",
    ):
        return (result.triangles.tobytes(), result.per_machine_output.tobytes())
    if name == "mst":
        return (result.edges.tobytes(), result.total_weight, result.phases)
    if name == "connectivity":
        return (result.labels.tobytes(), result.num_components)
    if name == "sorting":
        return tuple(b.tobytes() for b in result.blocks)
    raise AssertionError(f"no signature rule for {name!r}")


class TestCrossEngineEquivalence:
    @pytest.mark.parametrize("name", runtime.available())
    def test_bit_identical_results_and_metrics_across_engines(self, name):
        reports = [
            runtime.run(name, _input_for(name), K, seed=SEED, engine=e)
            for e in ENGINES
        ]
        base = reports[0]
        for other in reports[1:]:
            assert _result_signature(name, base.result) == _result_signature(
                name, other.result
            )
            assert _metrics_signature(base.metrics) == _metrics_signature(
                other.metrics
            )
        assert tuple(r.engine for r in reports) == ENGINES

    @pytest.mark.parametrize("name", runtime.available())
    def test_registry_run_matches_direct_call(self, name):
        rep = runtime.run(name, _input_for(name), K, seed=SEED)
        direct = {
            "pagerank": lambda: repro.distributed_pagerank(
                FIXED_GRAPH, k=K, seed=SEED, c=16.0
            ),
            "pagerank-baseline": lambda: repro.baseline_pagerank(
                FIXED_GRAPH, k=K, seed=SEED, c=16.0
            ),
            "triangles": lambda: repro.enumerate_triangles_distributed(
                FIXED_GRAPH, k=K, seed=SEED
            ),
            "subgraphs": lambda: repro.enumerate_subgraphs_distributed(
                FIXED_GRAPH, k=K, seed=SEED
            ),
            "mst": lambda: repro.distributed_mst(
                FIXED_GRAPH,
                np.random.default_rng(SEED).random(FIXED_GRAPH.m),
                k=K,
                seed=SEED,
            ),
            "connectivity": lambda: repro.connected_components_distributed(
                FIXED_GRAPH, k=K, seed=SEED
            ),
            "sorting": lambda: repro.distributed_sort(FIXED_VALUES, k=K, seed=SEED),
            "congested-clique-triangles": lambda: (
                repro.enumerate_triangles_congested_clique(FIXED_GRAPH, seed=SEED)
            ),
            "triangles-conversion": lambda: repro.enumerate_triangles_conversion(
                FIXED_GRAPH, k=K, seed=SEED
            ),
        }[name]()
        assert _result_signature(name, rep.result) == _result_signature(name, direct)
        assert _metrics_signature(rep.metrics) == _metrics_signature(direct.metrics)


class TestRunReport:
    def test_report_fields(self):
        rep = runtime.run("triangles", FIXED_GRAPH, K, seed=SEED)
        assert rep.name == "triangles"
        assert rep.k == K and rep.n == FIXED_GRAPH.n
        assert rep.rounds == rep.metrics.rounds
        assert rep.bandwidth == rep.metrics.bandwidth
        assert isinstance(rep.result, rep.spec.result_type)
        assert rep.distgraph is not None
        assert rep.distgraph.graph is FIXED_GRAPH

    def test_round_value_uses_spec_metric(self):
        rep = runtime.run("pagerank", FIXED_GRAPH, K, seed=SEED, c=2)
        assert rep.round_value() == rep.result.token_rounds()

    def test_lower_bound_evaluates_cookbook(self):
        rep = runtime.run("sorting", FIXED_VALUES, K, seed=SEED)
        lb = rep.lower_bound()
        assert lb is not None and lb > 0
        expected = repro.sorting_round_lower_bound(
            FIXED_VALUES.size, K, rep.bandwidth
        )
        assert lb == expected

    def test_lower_bound_none_when_spec_has_none(self):
        rep = runtime.run("subgraphs", FIXED_GRAPH, 16, seed=SEED)
        assert rep.lower_bound() is None

    def test_triangle_lower_bound_uses_measured_t(self):
        # Theorem 3's bound needs the output count; the spec threads it
        # through so sparse inputs don't report a bound above the rounds.
        g = repro.gnp_random_graph(300, 4 / 300, seed=2)
        rep = runtime.run("triangles", g, K, seed=SEED)
        expected = repro.triangle_round_lower_bound(
            g.n, K, rep.bandwidth, t=max(1, rep.result.count)
        )
        assert rep.lower_bound() == expected
        assert rep.lower_bound() <= rep.rounds

    def test_params_merge_defaults_and_overrides(self):
        rep = runtime.run("subgraphs", FIXED_GRAPH, 16, seed=SEED, pattern="c4")
        assert rep.params["pattern"] == "c4"
        rep2 = runtime.run("subgraphs", FIXED_GRAPH, 16, seed=SEED)
        assert rep2.params["pattern"] == "k4"


class TestRegistryAPI:
    def test_available_lists_all_families(self):
        names = runtime.available()
        assert names == tuple(sorted(names))
        for expected in (
            "connectivity",
            "mst",
            "pagerank",
            "pagerank-baseline",
            "sorting",
            "subgraphs",
            "triangles",
        ):
            assert expected in names

    def test_unknown_name_raises_with_listing(self):
        with pytest.raises(AlgorithmError, match="registered:"):
            runtime.get_spec("nope")
        with pytest.raises(AlgorithmError):
            runtime.run("nope", FIXED_GRAPH, K)

    def test_duplicate_register_rejected(self):
        spec = runtime.get_spec("pagerank")
        with pytest.raises(AlgorithmError, match="already registered"):
            runtime.register(spec)

    def test_spec_validates_input_kind(self):
        with pytest.raises(AlgorithmError):
            AlgorithmSpec(
                name="x",
                title="x",
                runner=lambda *a: None,
                input_kind="tensor",
                result_type=object,
                bounds="",
            )

    def test_specs_metadata_complete(self):
        for spec in runtime.specs():
            assert spec.title and spec.bounds
            assert spec.input_kind in ("graph", "values")
            assert isinstance(spec.result_type, type)


class TestPlacementAndCluster:
    def test_explicit_placement_is_used(self):
        part = random_vertex_partition(FIXED_GRAPH.n, K, seed=3)
        rep = runtime.run("triangles", FIXED_GRAPH, K, seed=SEED, placement=part)
        assert rep.distgraph.partition is part

    def test_prebuilt_distgraph_reused(self):
        part = random_vertex_partition(FIXED_GRAPH.n, K, seed=3)
        dg = DistributedGraph(FIXED_GRAPH, part)
        rep = runtime.run("pagerank", FIXED_GRAPH, K, seed=SEED, placement=dg, c=2)
        assert rep.distgraph is dg

    def test_mismatched_cluster_k_rejected(self):
        cluster = repro.Cluster(k=3, n=FIXED_GRAPH.n, seed=0)
        with pytest.raises(AlgorithmError):
            runtime.run("triangles", FIXED_GRAPH, K, cluster=cluster)

    def test_same_partition_same_results_across_engines(self):
        # With a pinned placement, everything downstream is a pure function
        # of the machine RNG streams — identical on every backend.
        part = random_vertex_partition(FIXED_GRAPH.n, K, seed=8)
        sigs = []
        for e in ENGINES:
            rep = runtime.run(
                "pagerank", FIXED_GRAPH, K, seed=SEED, engine=e, placement=part, c=2
            )
            sigs.append(_result_signature("pagerank", rep.result))
        assert all(s == sigs[0] for s in sigs[1:])


class TestProcessEngineKnobs:
    def test_workers_knob_reported(self):
        rep = runtime.run(
            "pagerank", FIXED_GRAPH, K, seed=SEED, engine="process", workers=2, c=2
        )
        assert rep.engine == "process"
        assert rep.workers == 2

    def test_workers_capped_at_k(self):
        rep = runtime.run(
            "pagerank", FIXED_GRAPH, K, seed=SEED, engine="process", workers=64, c=2
        )
        assert rep.workers == K

    def test_inline_engines_report_no_workers(self):
        rep = runtime.run("pagerank", FIXED_GRAPH, K, seed=SEED, engine="vector", c=2)
        assert rep.workers is None

    def test_workers_with_inline_engine_rejected(self):
        with pytest.raises(ModelError, match="workers"):
            runtime.run(
                "pagerank", FIXED_GRAPH, K, seed=SEED, engine="vector", workers=2, c=2
            )

    def test_workers_with_explicit_cluster_rejected(self):
        cluster = repro.Cluster(k=K, n=FIXED_GRAPH.n, seed=0)
        with pytest.raises(AlgorithmError, match="workers"):
            runtime.run(
                "pagerank", FIXED_GRAPH, K, cluster=cluster, workers=2, c=2
            )


class TestWarmPoolReuse:
    def test_consecutive_runs_reuse_the_same_worker_pool(self):
        # The tentpole contract: two consecutive runtime.run calls on the
        # process backend reuse the same worker pool — no respawn.  The
        # run-owned cluster close releases the pool warm instead of
        # destroying it.
        from repro.kmachine.parallel import active_pools, shutdown_worker_pools

        shutdown_worker_pools()
        rep1 = runtime.run(
            "triangles", FIXED_GRAPH, K, seed=SEED, engine="process", workers=2
        )
        pools = active_pools()
        assert len(pools) == 1
        pool = pools[0]
        assert pool.holder is None and pool.alive  # released warm, not destroyed
        pids = pool.pids
        rep2 = runtime.run(
            "triangles", FIXED_GRAPH, K, seed=SEED, engine="process", workers=2
        )
        assert active_pools() == (pool,)
        assert pool.pids == pids and pool.alive
        assert _result_signature("triangles", rep1.result) == _result_signature(
            "triangles", rep2.result
        )
        assert _metrics_signature(rep1.metrics) == _metrics_signature(rep2.metrics)

    def test_warm_reuse_spans_families(self):
        from repro.kmachine.parallel import active_pools, shutdown_worker_pools

        shutdown_worker_pools()
        runtime.run("sorting", FIXED_VALUES, K, seed=SEED, engine="process", workers=2)
        (pool,) = active_pools()
        runtime.run("mst", FIXED_GRAPH, K, seed=SEED, engine="process", workers=2)
        assert active_pools() == (pool,) and pool.alive


class TestFixedKFamilies:
    def test_congested_clique_overrides_k(self):
        rep = runtime.run("congested-clique-triangles", FIXED_GRAPH, 7, seed=SEED)
        assert rep.k == FIXED_GRAPH.n
        assert rep.result.count == repro.count_triangles(FIXED_GRAPH)
        # one machine per vertex, identity placement
        assert np.array_equal(
            rep.distgraph.partition.home, np.arange(FIXED_GRAPH.n)
        )

    def test_congested_clique_rejects_non_identity_partition(self):
        with pytest.raises(AlgorithmError, match="identity"):
            repro.enumerate_triangles_congested_clique(
                FIXED_GRAPH,
                partition=random_vertex_partition(
                    FIXED_GRAPH.n, FIXED_GRAPH.n, seed=1
                ),
            )

    def test_conversion_counts_match_theorem5(self):
        rep = runtime.run("triangles-conversion", FIXED_GRAPH, K, seed=SEED)
        tri = runtime.run("triangles", FIXED_GRAPH, K, seed=SEED)
        assert rep.result.count == tri.result.count
        # the conversion baseline pays the k^{1/3} factor in traffic
        assert rep.metrics.messages > tri.metrics.messages


class TestDistgraphCache:
    def test_repeated_runs_share_shards(self):
        clear_distgraph_cache()
        a = runtime.run("triangles", FIXED_GRAPH, K, seed=SEED)
        b = runtime.run("triangles", FIXED_GRAPH, K, seed=SEED)
        # same graph + same seed -> identical partition draw -> cached hit
        assert a.distgraph is b.distgraph

    def test_pinned_partition_reuses_distgraph_across_engines(self):
        clear_distgraph_cache()
        part = random_vertex_partition(FIXED_GRAPH.n, K, seed=8)
        reps = [
            runtime.run(
                "pagerank", FIXED_GRAPH, K, seed=SEED, engine=e, placement=part, c=2
            )
            for e in ENGINES
        ]
        assert all(r.distgraph is reps[0].distgraph for r in reps[1:])

    def test_different_seed_misses(self):
        clear_distgraph_cache()
        a = runtime.run("triangles", FIXED_GRAPH, K, seed=SEED)
        b = runtime.run("triangles", FIXED_GRAPH, K, seed=SEED + 1)
        assert a.distgraph is not b.distgraph

    def test_equal_content_partitions_hit(self):
        clear_distgraph_cache()
        p1 = random_vertex_partition(FIXED_GRAPH.n, K, seed=8)
        p2 = random_vertex_partition(FIXED_GRAPH.n, K, seed=8)
        assert p1 is not p2
        dg1 = cached_distgraph(FIXED_GRAPH, p1)
        dg2 = cached_distgraph(FIXED_GRAPH, p2)
        assert dg1 is dg2

    def test_cache_never_aliases_different_graphs(self):
        clear_distgraph_cache()
        g2 = repro.gnp_random_graph(48, 0.25, seed=6)
        part = random_vertex_partition(48, K, seed=8)
        assert cached_distgraph(FIXED_GRAPH, part) is not cached_distgraph(g2, part)


class TestMixedIntentRejected:
    """engine=/seed=/bandwidth= configure the cluster run() builds; with an
    explicit cluster= they were silently ignored (the PR-6 bugfix)."""

    def test_engine_with_cluster_rejected(self):
        cluster = repro.Cluster(k=K, n=FIXED_GRAPH.n, seed=0)
        with pytest.raises(AlgorithmError, match="engine"):
            runtime.run("triangles", FIXED_GRAPH, K, cluster=cluster, engine="vector")

    def test_seed_with_cluster_rejected(self):
        cluster = repro.Cluster(k=K, n=FIXED_GRAPH.n, seed=0)
        with pytest.raises(AlgorithmError, match="seed"):
            runtime.run("triangles", FIXED_GRAPH, K, cluster=cluster, seed=SEED)

    def test_bandwidth_with_cluster_rejected(self):
        cluster = repro.Cluster(k=K, n=FIXED_GRAPH.n, seed=0)
        with pytest.raises(AlgorithmError, match="bandwidth"):
            runtime.run("triangles", FIXED_GRAPH, K, cluster=cluster, bandwidth=64)

    def test_cluster_alone_still_works(self):
        cluster = repro.Cluster(k=K, n=FIXED_GRAPH.n, seed=0)
        rep = runtime.run("triangles", FIXED_GRAPH, K, cluster=cluster)
        assert rep.k == K


class TestResultCache:
    """runtime.run(result_cache=...) — hit, miss, and cacheability rules."""

    @pytest.fixture
    def dataset_graph(self, tmp_path):
        from repro.workloads import GraphCache

        return GraphCache(root=tmp_path / "data").materialize(
            "gnp:n=120,avg_deg=5,seed=3"
        )

    @pytest.fixture
    def store(self, tmp_path):
        from repro.serve import ResultStore

        with ResultStore(tmp_path / "results.sqlite") as s:
            yield s

    def test_second_run_hits_without_executing(self, dataset_graph, store, monkeypatch):
        import repro.runtime.registry as registry_mod

        first = runtime.run(
            "pagerank", dataset_graph, K, seed=SEED, result_cache=store, c=2
        )
        assert not first.cached
        assert store.stats() == pytest.approx(
            {**store.stats(), "hits": 0, "misses": 1, "stores": 1}
        )
        # A hit must never build a cluster: poison the constructor.
        monkeypatch.setattr(
            registry_mod, "Cluster",
            lambda *a, **kw: pytest.fail("cache hit built a cluster"),
        )
        second = runtime.run(
            "pagerank", dataset_graph, K, seed=SEED, result_cache=store, c=2
        )
        assert second.cached
        assert second.distgraph is None and second.workers is None
        assert store.stats()["hits"] == 1
        assert np.array_equal(first.result.estimates, second.result.estimates)
        assert second.rounds == first.rounds
        assert second.metrics.messages == first.metrics.messages

    def test_param_change_misses(self, dataset_graph, store):
        runtime.run("pagerank", dataset_graph, K, seed=SEED, result_cache=store, c=2)
        rep = runtime.run(
            "pagerank", dataset_graph, K, seed=SEED, result_cache=store, c=3
        )
        assert not rep.cached
        assert store.stats()["stores"] == 2

    def test_graph_without_content_key_is_not_cached(self, store):
        runtime.run("triangles", FIXED_GRAPH, K, seed=SEED, result_cache=store)
        runtime.run("triangles", FIXED_GRAPH, K, seed=SEED, result_cache=store)
        assert len(store) == 0

    def test_unpinned_seed_is_not_cached(self, dataset_graph, store):
        runtime.run("triangles", dataset_graph, K, result_cache=store)
        assert len(store) == 0

    def test_placement_bypasses_the_cache(self, dataset_graph, store):
        part = random_vertex_partition(dataset_graph.n, K, seed=8)
        runtime.run(
            "triangles", dataset_graph, K, seed=SEED, result_cache=store,
            placement=part,
        )
        assert len(store) == 0

    def test_cache_only_probe(self, dataset_graph, store):
        probe = runtime.run(
            "triangles", dataset_graph, K, seed=SEED,
            result_cache=store, cache_only=True,
        )
        assert probe is None
        assert store.stats()["misses"] == 0, "probes must not count misses"
        runtime.run("triangles", dataset_graph, K, seed=SEED, result_cache=store)
        hit = runtime.run(
            "triangles", dataset_graph, K, seed=SEED,
            result_cache=store, cache_only=True,
        )
        assert hit is not None and hit.cached

    def test_cache_only_without_store_rejected(self, dataset_graph):
        with pytest.raises(AlgorithmError, match="cache_only"):
            runtime.run("triangles", dataset_graph, K, seed=SEED, cache_only=True)
