"""Experiment T4/T4b — Theorem 4: PageRank in ``Õ(n/k²)`` rounds.

Regenerates the paper's headline PageRank comparison as a table of
measured round counts versus ``k``:

* Algorithm 1 (this paper): rounds should scale superlinearly in ``k``
  (``~k^-2`` while per-link loads exceed ``B``);
* per-edge-forwarding baseline (Klauck et al., SODA'15): ``~k^-1`` on
  high-degree graphs;
* ablation: Algorithm 1 with the heavy-vertex path disabled, which
  regresses toward the baseline on star-like inputs.

The paper proves asymptotics, not absolute numbers; the reproduction
target is the *shape* — who wins and the fitted exponents.

The module also regenerates the execution-engine comparisons: the same
Algorithm-1 run at ``n = 50_000`` on the per-object ``MessageEngine``
versus the vectorized ``VectorEngine`` (identical round/message/bit
counts, ``>= 3x`` wall-clock for the vector backend), and at
``n = 100_000`` the vectorized backend versus the multiprocessing
``ProcessEngine`` with 4 shard workers (identical counts; ``>= 1.5x``
wall-clock asserted when the host has at least 4 CPUs), plus the
resident-superstep comparison at ``n = 200_000``: the legacy
ship-everything driver versus the worker-resident delta-shipping one on
the same process engine (identical counts; full-scale floor tracked in
``BENCH_shipping.json``).
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import repro
from repro.experiments.fits import fit_power_law
from repro.experiments.harness import Sweep

from _common import emit, log2ceil, run_algorithm

KS = (4, 8, 16, 32)
KS_LARGE = (8, 16, 32, 64)
N_GNP = 3000
N_STAR = 2000
N_ENGINE = 50_000
N_PROCESS = 100_000
N_RESIDENT = 200_000
PROCESS_WORKERS = 4


def run_gnp_sweep():
    g = repro.gnp_random_graph(N_GNP, 6.0 / N_GNP, seed=1)
    B = log2ceil(N_GNP)
    sweep = Sweep("T4: PageRank rounds vs k on G(n, 6/n), n=%d" % N_GNP)
    for k in KS:
        algo = run_algorithm("pagerank", g, k, seed=2, c=0.5, bandwidth=B).result
        base = run_algorithm("pagerank-baseline", g, k, seed=2, c=0.5, bandwidth=B).result
        sweep.add(
            {"k": k},
            {
                "algo1_rounds": algo.token_rounds(),
                "baseline_rounds": base.token_rounds(),
                "algo1_first_iter": algo.iteration_stats[0].rounds,
                "baseline_first_iter": base.iteration_stats[0].rounds,
            },
        )
    return sweep


def run_asymptotic_sweep():
    """Single fully-loaded iteration at large n: the k^-2 regime.

    With one token per vertex (no destination saturation) and per-link
    loads far above the whp-fluctuation scale, the measured exponent
    approaches the paper's -2 (it is flattened toward -1.5 at small n by
    the max-over-links deviation term — the 'log x' of Lemma 13).
    """
    n = 1_000_000
    g = repro.random_regularish_graph(n, 8, seed=4)
    B = log2ceil(n)
    sweep = Sweep("T4 asymptotic regime: first-iteration rounds, n=%d, T0=1" % n)
    for k in KS_LARGE:
        r = run_algorithm(
            "pagerank", g, k, seed=5, c=0.01, bandwidth=B, max_iterations=2
        ).result
        sweep.add({"k": k}, {"first_iter_rounds": r.iteration_stats[0].rounds})
    return sweep


def run_engine_comparison(n=N_ENGINE, k=16, max_iterations=2):
    """Identical counts, >= 3x wall-clock: VectorEngine vs MessageEngine."""
    g = repro.random_regularish_graph(n, 8, seed=6)
    B = log2ceil(n)
    timings: dict[str, float] = {}
    counts: dict[str, tuple] = {}
    for eng in ("vector", "message"):
        start = time.perf_counter()
        rep = run_algorithm(
            "pagerank", g, k, seed=7, c=0.5, bandwidth=B,
            max_iterations=max_iterations, engine=eng,
        )
        timings[eng] = time.perf_counter() - start
        counts[eng] = (rep.rounds, rep.metrics.messages, rep.metrics.bits)
    assert counts["vector"] == counts["message"], counts
    return timings, counts


def run_process_comparison(
    n=N_PROCESS, k=16, workers=PROCESS_WORKERS, max_iterations=2, c=4.0
):
    """Identical counts, parallel speedup: ProcessEngine vs VectorEngine.

    ``c = 4`` puts every vertex in the heavy-token regime (``T0 >= k``),
    where Algorithm 1's wall-clock is dominated by the per-machine
    heavy-vertex sampling loops — per-shard *compute*, which the process
    backend fans out to ``workers`` shard workers over a shared-memory
    graph store while the exchange and accounting layers stay
    byte-identical.  Per-superstep IPC (token payloads and outbox
    fragments over pipes) measures ~2% of the kernel time at this scale.
    """
    g = repro.random_regularish_graph(n, 8, seed=6)
    B = log2ceil(n)
    timings: dict[str, float] = {}
    counts: dict[str, tuple] = {}
    for eng in ("vector", "process"):
        kwargs = {"engine": eng}
        if eng == "process":
            kwargs["workers"] = workers
        start = time.perf_counter()
        rep = run_algorithm(
            "pagerank", g, k, seed=7, c=c, bandwidth=B,
            max_iterations=max_iterations, **kwargs,
        )
        timings[eng] = time.perf_counter() - start
        counts[eng] = (rep.rounds, rep.metrics.messages, rep.metrics.bits)
    assert counts["vector"] == counts["process"], counts
    return timings, counts


def run_resident_comparison(n=N_RESIDENT, k=8, workers=1, c=0.05):
    """Identical counts, shipping cut: resident vs legacy supersteps.

    Light-token regime run to termination on the process engine.  The
    legacy driver rebuilds and ships O(n) token payloads every
    iteration and merges outbox fragments parent-side; the resident
    driver keeps the token/ψ tables worker-side and fuses delivery
    application into the next dispatch, so each iteration is one
    delta-only kernel round-trip.  Throughput is iterations per second
    of *stream* time (first superstep excluded), so pool spawn and
    graph publication do not dilute the ratio; one worker keeps the
    measurement clean on small hosts.  The full-scale trajectory for
    this comparison lives in ``BENCH_shipping.json``
    (``benchmarks/bench_shipping.py``).
    """
    from repro.kmachine.parallel import shutdown_worker_pools

    g = repro.random_regularish_graph(n, 8, seed=6)
    B = log2ceil(n)
    throughput: dict[str, float] = {}
    counts: dict[str, tuple] = {}
    try:
        for label, resident in (("legacy", False), ("resident", True)):
            rep = run_algorithm(
                "pagerank", g, k, seed=7, c=c, bandwidth=B,
                enable_heavy_path=False, engine="process", workers=workers,
                resident=resident,
            )
            stream = rep.wall_seconds - (rep.first_superstep_seconds or 0.0)
            throughput[label] = rep.result.iterations / max(stream, 1e-9)
            counts[label] = (rep.rounds, rep.metrics.messages, rep.metrics.bits)
    finally:
        shutdown_worker_pools()
    assert counts["legacy"] == counts["resident"], counts
    return throughput, counts


def run_star_sweep():
    g = repro.star_graph(N_STAR)
    B = log2ceil(N_STAR)
    sweep = Sweep("T4 ablation: star graph n=%d (heavy-vertex path)" % N_STAR)
    for k in KS:
        algo = run_algorithm("pagerank", g, k, seed=3, c=2, bandwidth=B).result
        no_heavy = run_algorithm(
            "pagerank", g, k, seed=3, c=2, bandwidth=B, enable_heavy_path=False
        ).result
        base = run_algorithm("pagerank-baseline", g, k, seed=3, c=2, bandwidth=B).result
        sweep.add(
            {"k": k},
            {
                "algo1_rounds": algo.token_rounds(),
                "no_heavy_rounds": no_heavy.token_rounds(),
                "baseline_rounds": base.token_rounds(),
            },
        )
    return sweep


def bench_t4_pagerank_round_scaling(benchmark):
    gnp, star, asym = benchmark.pedantic(
        lambda: (run_gnp_sweep(), run_star_sweep(), run_asymptotic_sweep()),
        rounds=1,
        iterations=1,
    )
    timings, eng_counts = run_engine_comparison()
    speedup = timings["message"] / timings["vector"]
    ptimings, pcounts = run_process_comparison()
    pspeedup = ptimings["vector"] / ptimings["process"]
    rthroughput, rcounts = run_resident_comparison()
    rspeedup = rthroughput["resident"] / rthroughput["legacy"]

    ks = gnp.column("k")
    fit_algo = fit_power_law(ks, gnp.column("algo1_first_iter"))
    fit_base = fit_power_law(ks, gnp.column("baseline_first_iter"))
    fit_asym = fit_power_law(asym.column("k"), asym.column("first_iter_rounds"))
    lines = [
        gnp.render(),
        "",
        f"fit (first fully-loaded iteration): algo1 rounds ~ k^{fit_algo.exponent:.2f}"
        f"  (paper: k^-2; r2={fit_algo.r_squared:.3f})",
        f"fit: baseline rounds ~ k^{fit_base.exponent:.2f}  (prior work: ~k^-1..-2)",
        "",
        star.render(),
        "",
        asym.render(),
        "",
        f"fit (asymptotic regime): rounds ~ k^{fit_asym.exponent:.2f}"
        f"  (paper: k^-2; r2={fit_asym.r_squared:.3f})",
        "",
        f"engine comparison (n={N_ENGINE}, identical counts {eng_counts['vector']}):",
        f"  message: {timings['message']:.3f}s   vector: {timings['vector']:.3f}s"
        f"   speedup: {speedup:.1f}x (target: >= 3x)",
        "",
        f"process engine (n={N_PROCESS}, {PROCESS_WORKERS} workers, "
        f"identical counts {pcounts['vector']}):",
        f"  vector: {ptimings['vector']:.3f}s   process: {ptimings['process']:.3f}s"
        f"   speedup: {pspeedup:.2f}x (target: >= 1.5x on >= 4 CPUs; "
        f"host has {os.cpu_count()})",
        "",
        f"resident supersteps (n={N_RESIDENT}, k=8, process/1 worker, "
        f"identical counts {rcounts['legacy']}):",
        f"  legacy: {rthroughput['legacy']:.1f} supersteps/s   "
        f"resident: {rthroughput['resident']:.1f} supersteps/s"
        f"   speedup: {rspeedup:.2f}x (full-scale floor: >= 1.5x, "
        f"see BENCH_shipping.json)",
    ]
    emit("T4_pagerank_rounds", "\n".join(lines))

    benchmark.extra_info["algo1_exponent"] = fit_algo.exponent
    benchmark.extra_info["baseline_exponent"] = fit_base.exponent
    benchmark.extra_info["asymptotic_exponent"] = fit_asym.exponent
    benchmark.extra_info["engine_speedup"] = speedup
    benchmark.extra_info["process_speedup"] = pspeedup
    benchmark.extra_info["resident_speedup"] = rspeedup

    # Shape assertions: Algorithm 1 scales clearly superlinearly, and the
    # large-n fit approaches the paper's -2; the baseline loses on the
    # star at every k, and the heavy path is what saves Algorithm 1 there.
    assert fit_algo.exponent < -1.3
    assert fit_asym.exponent < -1.75
    for row in star.rows:
        assert row.values["algo1_rounds"] < row.values["baseline_rounds"]
        assert row.values["algo1_rounds"] <= row.values["no_heavy_rounds"]
    assert speedup >= 3.0, f"vector engine only {speedup:.1f}x faster than message"
    # Parallel speedup needs parallel hardware; counts are asserted always.
    if (os.cpu_count() or 1) >= PROCESS_WORKERS:
        assert pspeedup >= 1.5, (
            f"process engine only {pspeedup:.2f}x faster than vector "
            f"with {PROCESS_WORKERS} workers on {os.cpu_count()} CPUs"
        )


def smoke():
    """Smallest configuration: the gnp sweep shape plus tiny engine checks."""
    g = repro.gnp_random_graph(200, 6.0 / 200, seed=1)
    B = log2ceil(200)
    r = run_algorithm(
        "pagerank", g, 4, seed=2, c=0.5, bandwidth=B, max_iterations=3
    ).result
    assert r.rounds > 0
    timings, counts = run_engine_comparison(n=500, k=4, max_iterations=2)
    assert counts["vector"] == counts["message"]
    _, pcounts = run_process_comparison(
        n=500, k=4, workers=2, max_iterations=2, c=0.5
    )
    assert pcounts["vector"] == pcounts["process"]
    _, rcounts = run_resident_comparison(n=500, k=4, workers=2)
    assert rcounts["legacy"] == rcounts["resident"]
