"""Experiments T5/T5b — Theorem 5: triangles in ``Õ(m/k^{5/3} + n/k^{4/3})``.

Regenerates the triangle-enumeration comparison on dense ``G(n, 1/2)``
inputs (the paper's lower-bound distribution):

* Theorem-5 algorithm (color triplets + edge proxies): rounds should fall
  ``~k^{-5/3}`` across the cube-k sweep;
* Klauck-style conversion baseline ``Õ(n^{7/3}/k²)``: a factor
  ``~k^{1/3}`` slower at every k;
* broadcast strawman ``Õ(m/k)``;
* ablation: no-proxy variant (send load concentrates on home machines of
  heavy vertices — reported via the max per-machine send count).

The module also regenerates the process-engine comparison at
``n = 100_000``: the same Theorem-5 run on the vectorized inline backend
versus multiprocessing shard workers.  Phase-3 local enumeration — a
superstep kernel since the universal-kernel refactor — dominates
wall-clock at this scale and fans out across the worker pool, while the
exchange and accounting layers stay byte-identical (counts asserted
always; ``>= 1.5x`` wall-clock asserted when the host has at least 4
CPUs).  A second comparison at the same scale pits the legacy
ship-everything Phase-3 path against the worker-resident one (counts
asserted identical; the shipping-cut floor is tracked at full scale in
``BENCH_shipping.json``).
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import repro
from repro.experiments.fits import fit_power_law
from repro.experiments.harness import Sweep

from _common import emit, log2ceil, run_algorithm

N = 220
KS = (8, 27, 64, 125)
N_PROCESS = 100_000
K_PROCESS = 27
PROCESS_WORKERS = 4


def run_dense_sweep():
    g = repro.gnp_random_graph(N, 0.5, seed=0)
    B = log2ceil(N)
    sweep = Sweep(f"T5: triangle rounds vs k on G({N}, 1/2), m={g.m}, B={B}")
    for k in KS:
        ours = run_algorithm("triangles", g, k, seed=1, bandwidth=B).result
        conv = repro.enumerate_triangles_conversion(g, k=k, seed=1, bandwidth=B)
        bcast = repro.enumerate_triangles_broadcast(g, k=k, seed=1, bandwidth=B)
        assert ours.count == conv.count == bcast.count
        sweep.add(
            {"k": k},
            {
                "theorem5_rounds": ours.rounds,
                "conversion_rounds": conv.rounds,
                "broadcast_rounds": bcast.rounds,
                "triangles": ours.count,
            },
        )
    return sweep


def run_asymptotic_sweep():
    """Communication-only sweep at large n: the k^{-5/3} regime.

    Local enumeration is free in the model, so skipping it lets the sweep
    reach loads where the per-link whp deviations (which flatten the
    small-n fit toward -1.2) are negligible.
    """
    n = 2400
    g = repro.gnp_random_graph(n, 0.5, seed=9)
    B = log2ceil(n)
    sweep = Sweep(f"T5 asymptotic regime: comm-only rounds, G({n},1/2), m={g.m}")
    for k in (27, 64, 125, 216):
        r = run_algorithm(
            "triangles", g, k, seed=10, bandwidth=B, skip_local_enumeration=True
        ).result
        sweep.add({"k": k}, {"rounds": r.rounds})
    return sweep


def run_sparse_sweep():
    """The ``n/k^{4/3}`` term's regime: sparse graphs."""
    n = 3000
    g = repro.gnp_random_graph(n, 4.0 / n, seed=2)
    B = log2ceil(n)
    sweep = Sweep(f"T5 sparse: G({n}, 4/n), m={g.m}, B={B}")
    for k in KS:
        ours = run_algorithm("triangles", g, k, seed=3, bandwidth=B).result
        sweep.add({"k": k}, {"theorem5_rounds": ours.rounds, "triangles": ours.count})
    return sweep


def run_proxy_ablation():
    """Max per-machine send load with/without proxies on a heavy-tail graph."""
    g = repro.chung_lu_graph(1200, exponent=2.1, avg_degree=10, seed=4)
    B = log2ceil(g.n)
    sweep = Sweep("T5 ablation: proxy load balancing on a Chung-Lu graph")
    for k in (27, 64):
        with_p = run_algorithm(
            "triangles", g, k, seed=5, bandwidth=B, use_proxies=True
        ).result
        without = run_algorithm(
            "triangles", g, k, seed=5, bandwidth=B, use_proxies=False
        ).result
        def send(res):
            return max(
                p.max_machine_sent for p in res.metrics.phase_log if "to-" in p.label
            )
        sweep.add(
            {"k": k},
            {
                "max_send_with_proxies": send(with_p),
                "max_send_without": send(without),
                "rounds_with": with_p.rounds,
                "rounds_without": without.rounds,
            },
        )
    return sweep


def run_process_comparison(
    n=N_PROCESS, k=K_PROCESS, workers=PROCESS_WORKERS, avg_degree=16.0, seed=6
):
    """Identical counts, parallel speedup: ProcessEngine vs VectorEngine.

    At ``k = 27`` the color partition uses ``q = 3``, so all 27 machines
    own triplets and Phase 3 enumerates ``~3m/27`` received edges each —
    per-machine *compute* (the forward-algorithm intersection loop) that
    the process backend fans out across ``workers`` shard workers, with
    the received edge payloads shipped through per-superstep
    shared-memory segments rather than pipes.  The exchange phases and
    all accounting stay byte-identical across backends.
    """
    g = repro.gnp_random_graph(n, avg_degree / n, seed=seed)
    B = log2ceil(n)
    timings: dict[str, float] = {}
    counts: dict[str, tuple] = {}
    for eng in ("vector", "process"):
        kwargs = {"engine": eng}
        if eng == "process":
            kwargs["workers"] = workers
        start = time.perf_counter()
        rep = run_algorithm("triangles", g, k, seed=7, bandwidth=B, **kwargs)
        timings[eng] = time.perf_counter() - start
        counts[eng] = (
            rep.rounds,
            rep.metrics.messages,
            rep.metrics.bits,
            rep.result.count,
        )
    assert counts["vector"] == counts["process"], counts
    return timings, counts


def run_resident_comparison(
    n=N_PROCESS, k=K_PROCESS, workers=1, avg_degree=16.0, seed=6
):
    """Identical counts, shipping cut: resident vs legacy wall-clock.

    The resident Phase-3 path keeps each machine's received-edge tables
    worker-side and assembles the enumeration outbox in the workers, so
    the parent never re-ships or re-merges per-machine edge payloads.
    One worker keeps the comparison a pure shipping measurement on
    small hosts (the parallel-compute story is
    :func:`run_process_comparison`).
    """
    from repro.kmachine.parallel import shutdown_worker_pools

    g = repro.gnp_random_graph(n, avg_degree / n, seed=seed)
    B = log2ceil(n)
    timings: dict[str, float] = {}
    counts: dict[str, tuple] = {}
    try:
        for label, resident in (("legacy", False), ("resident", True)):
            rep = run_algorithm(
                "triangles", g, k, seed=7, bandwidth=B, engine="process",
                workers=workers, resident=resident,
            )
            timings[label] = rep.wall_seconds - (rep.first_superstep_seconds or 0.0)
            counts[label] = (
                rep.rounds,
                rep.metrics.messages,
                rep.metrics.bits,
                rep.result.count,
            )
    finally:
        shutdown_worker_pools()
    assert counts["legacy"] == counts["resident"], counts
    return timings, counts


def bench_t5_triangle_round_scaling(benchmark):
    dense, sparse, ablation, asym = benchmark.pedantic(
        lambda: (
            run_dense_sweep(),
            run_sparse_sweep(),
            run_proxy_ablation(),
            run_asymptotic_sweep(),
        ),
        rounds=1,
        iterations=1,
    )
    ptimings, pcounts = run_process_comparison()
    pspeedup = ptimings["vector"] / ptimings["process"]
    rtimings, rcounts = run_resident_comparison()
    rspeedup = rtimings["legacy"] / max(rtimings["resident"], 1e-9)

    ks = dense.column("k")
    fit_ours = fit_power_law(ks, dense.column("theorem5_rounds"))
    fit_conv = fit_power_law(ks, dense.column("conversion_rounds"))
    fit_bcast = fit_power_law(ks, dense.column("broadcast_rounds"))
    fit_asym = fit_power_law(asym.column("k"), asym.column("rounds"))
    lines = [
        dense.render(),
        "",
        f"fit: theorem5 rounds ~ k^{fit_ours.exponent:.2f}  (paper: k^-5/3 = k^-1.67;"
        f" r2={fit_ours.r_squared:.3f}; flattened at this small n by per-link whp deviations)",
        f"fit: conversion rounds ~ k^{fit_conv.exponent:.2f}  (prior work: k^-2 with an"
        f" n^(1/3)/k^(1/3)-larger constant)",
        f"fit: broadcast rounds ~ k^{fit_bcast.exponent:.2f}  (strawman: k^-1)",
        "",
        sparse.render(),
        "",
        ablation.render(),
        "",
        asym.render(),
        "",
        f"fit (asymptotic regime): rounds ~ k^{fit_asym.exponent:.2f}"
        f"  (paper: k^-5/3 = k^-1.67; r2={fit_asym.r_squared:.3f})",
        "",
        f"process engine (n={N_PROCESS}, k={K_PROCESS}, {PROCESS_WORKERS} workers, "
        f"identical counts {pcounts['vector']}):",
        f"  vector: {ptimings['vector']:.3f}s   process: {ptimings['process']:.3f}s"
        f"   speedup: {pspeedup:.2f}x (target: >= 1.5x on >= 4 CPUs; "
        f"host has {os.cpu_count()})",
        "",
        f"resident supersteps (n={N_PROCESS}, k={K_PROCESS}, "
        f"process/1 worker, identical counts {rcounts['legacy']}):",
        f"  legacy: {rtimings['legacy']:.3f}s stream   "
        f"resident: {rtimings['resident']:.3f}s stream"
        f"   speedup: {rspeedup:.2f}x (shipping cut; full-scale "
        f"PageRank floor tracked in BENCH_shipping.json)",
    ]
    emit("T5_triangle_rounds", "\n".join(lines))
    benchmark.extra_info["theorem5_exponent"] = fit_ours.exponent
    benchmark.extra_info["asymptotic_exponent"] = fit_asym.exponent
    benchmark.extra_info["process_speedup"] = pspeedup
    benchmark.extra_info["resident_speedup"] = rspeedup

    # Shape: Theorem 5 wins against both baselines at every k; the
    # large-n fit approaches the paper's -5/3; proxies cut the worst
    # per-machine send load.
    for row in dense.rows:
        assert row.values["theorem5_rounds"] <= row.values["conversion_rounds"]
        assert row.values["theorem5_rounds"] <= row.values["broadcast_rounds"]
    assert fit_ours.exponent < -1.1
    assert fit_asym.exponent < -1.5
    for row in ablation.rows:
        assert row.values["max_send_with_proxies"] <= row.values["max_send_without"]
    # Parallel speedup needs parallel hardware; counts are asserted always.
    if (os.cpu_count() or 1) >= PROCESS_WORKERS:
        assert pspeedup >= 1.5, (
            f"process engine only {pspeedup:.2f}x faster than vector "
            f"with {PROCESS_WORKERS} workers on {os.cpu_count()} CPUs"
        )


def smoke():
    """Smallest configuration: dense sweep shape at one tiny (n, k)."""
    g = repro.gnp_random_graph(40, 0.5, seed=0)
    B = log2ceil(40)
    ours = run_algorithm("triangles", g, 8, seed=1, bandwidth=B).result
    conv = repro.enumerate_triangles_conversion(g, k=8, seed=1, bandwidth=B)
    assert ours.count == conv.count
    _, pcounts = run_process_comparison(n=400, k=8, workers=2, avg_degree=10.0)
    assert pcounts["vector"] == pcounts["process"]
    _, rcounts = run_resident_comparison(n=400, k=8, workers=2, avg_degree=10.0)
    assert rcounts["legacy"] == rcounts["resident"]
