"""Experiment W1 — the workload subsystem at scale.

Three artifacts:

* **build timings** — every scalable family generates an ``n = 10^6``
  (~8M-edge) CSR graph through the vectorized samplers; the R-MAT build
  is asserted to finish in single-digit seconds (the subsystem's
  acceptance bar — no Python loop ever touches an edge);
* **dataset sweep** — triangles / pagerank / mst across the workload
  families on all three execution engines, results and accounting
  asserted bit-identical per (dataset, algorithm) — the paper's upper
  bounds hold for arbitrary inputs, and so must the simulator;
* **cache round trip** — the acceptance spec
  ``rmat:n=100000,avg_deg=16,seed=7`` is materialized (cold build +
  snapshot store), re-materialized (warm load, asserted ``>= 5x``
  faster), and run end-to-end on all three engines bit-identically.

``main()`` emits the same measurements as one JSON document for the CI
``workloads`` job artifact (CI persists ``REPRO_DATA_DIR`` across runs
via actions/cache, so its cold builds happen once per cache key).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _common import emit, log2ceil, run_algorithm, workers_choice

BUILD_N = 1_000_000
BUILD_SPECS = (
    "rmat:n={n},avg_deg=16,seed=7",
    "sbm:n={n},blocks=32,avg_deg=16,seed=7",
    "geometric:n={n},avg_deg=16,seed=7",
    "smallworld:n={n},nbrs=16,seed=7",
    "gnp:n={n},avg_deg=16,seed=7",
)
#: Single-digit-seconds acceptance bar for the vectorized R-MAT build.
RMAT_BUILD_BUDGET_SECONDS = 10.0

SWEEP_N = 20_000
SWEEP_DATASETS = (
    "rmat:n={n},avg_deg=8,seed=1",
    "sbm:n={n},blocks=16,avg_deg=8,seed=1",
    "geometric:n={n},avg_deg=8,seed=1",
    "smallworld:n={n},nbrs=8,seed=1",
    "gnp:n={n},avg_deg=8,seed=1",
)
SWEEP_ALGOS = ("triangles", "pagerank", "mst")
ENGINES = ("message", "vector", "process")
K = 8
SEED = 2

ACCEPTANCE_SPEC = "rmat:n=100000,avg_deg=16,seed=7"


def _result_signature(algo: str, rep) -> tuple:
    sig = (rep.rounds, rep.metrics.messages, rep.metrics.bits)
    if algo == "triangles":
        return sig + (rep.result.count, rep.result.triangles.tobytes())
    if algo == "pagerank":
        return sig + (rep.result.estimates.tobytes(),)
    return sig + (rep.result.edges.tobytes(), rep.result.total_weight)


def run_build_timings(n: int = BUILD_N) -> list[dict]:
    """Generate one n-vertex graph per scalable family, timed."""
    from repro.workloads import build_dataset

    rows = []
    for template in BUILD_SPECS:
        spec = template.format(n=n)
        start = time.perf_counter()
        g = build_dataset(spec)
        elapsed = time.perf_counter() - start
        rows.append({
            "family": spec.split(":")[0],
            "n": g.n,
            "m": g.m,
            "seconds": round(elapsed, 2),
        })
    return rows


def run_dataset_sweep(
    n: int = SWEEP_N, k: int = K, engines: tuple = ENGINES, workers: int | None = None
) -> list[dict]:
    """Each algorithm on each workload family, bit-identical per engine."""
    rows = []
    B = log2ceil(n)
    for template in SWEEP_DATASETS:
        spec = template.format(n=n)
        for algo in SWEEP_ALGOS:
            sigs = {}
            timings = {}
            for engine in engines:
                kwargs = {"engine": engine}
                if engine == "process":
                    kwargs["workers"] = workers or workers_choice()
                start = time.perf_counter()
                rep = run_algorithm(
                    algo, None, k, dataset=spec, seed=SEED, bandwidth=B, **kwargs
                )
                timings[engine] = time.perf_counter() - start
                sigs[engine] = _result_signature(algo, rep)
            assert len(set(sigs.values())) == 1, (
                f"engine divergence on {algo} over {spec}: {sigs}"
            )
            rounds, messages, bits = next(iter(sigs.values()))[:3]
            rows.append({
                "dataset": spec.split(":")[0],
                "n": n,
                "algo": algo,
                "rounds": rounds,
                "messages": messages,
                "bits": bits,
                "timings_seconds": {e: round(t, 3) for e, t in timings.items()},
            })
    return rows


def run_cache_round_trip(
    spec: str = ACCEPTANCE_SPEC, k: int = K, engines: tuple = ENGINES,
    workers: int | None = None,
) -> dict:
    """Cold build vs warm snapshot load, then cross-engine equivalence."""
    from repro import runtime, workloads

    cache = workloads.default_cache()
    cache.evict(spec)
    start = time.perf_counter()
    workloads.materialize(spec)
    cold = time.perf_counter() - start
    start = time.perf_counter()
    g = workloads.materialize(spec)
    warm = time.perf_counter() - start
    assert cache.has(spec), "materialize must persist the snapshot"
    # Speedup is only a stable signal once the build is non-trivial
    # (smoke-sized builds finish in milliseconds either way).
    if cold >= 0.2:
        assert warm * 5 <= cold, (
            f"cache hit ({warm:.3f}s) should be >= 5x faster than the cold "
            f"build ({cold:.3f}s)"
        )
    sigs = {}
    for engine in engines:
        kwargs = {"engine": engine}
        if engine == "process":
            kwargs["workers"] = workers or workers_choice()
        rep = runtime.run("triangles", dataset=spec, k=k, seed=SEED, **kwargs)
        sigs[engine] = _result_signature("triangles", rep)
    assert len(set(sigs.values())) == 1, f"engine divergence on {spec}: {sigs}"
    rounds, messages, bits, count = next(iter(sigs.values()))[:4]
    return {
        "spec": spec,
        "n": g.n,
        "m": g.m,
        "cold_build_seconds": round(cold, 3),
        "warm_load_seconds": round(warm, 3),
        "engines": list(engines),
        "triangles": count,
        "rounds": rounds,
        "messages": messages,
        "bits": bits,
    }


def _render_report(builds, sweep, cache_trip) -> str:
    lines = ["W1 build timings (vectorized samplers, no per-edge Python):", ""]
    for row in builds:
        lines.append(
            f"  {row['family']:<12} n={row['n']:<9} m={row['m']:<9} "
            f"{row['seconds']:6.2f}s"
        )
    lines += ["", f"W1 dataset sweep (k={K}, engines bit-identical per row):", ""]
    for row in sweep:
        t = row["timings_seconds"]
        timing = "  ".join(f"{e}={t[e]:.2f}s" for e in t)
        lines.append(
            f"  {row['dataset']:<12} {row['algo']:<10} rounds={row['rounds']:<7} "
            f"bits={row['bits']:<12} {timing}"
        )
    c = cache_trip
    lines += [
        "",
        f"W1 cache round trip on {c['spec']} (n={c['n']}, m={c['m']}):",
        f"  cold build+store: {c['cold_build_seconds']:.3f}s   "
        f"warm snapshot load: {c['warm_load_seconds']:.3f}s",
        f"  triangles={c['triangles']} rounds={c['rounds']} "
        f"bits={c['bits']} — identical on {', '.join(c['engines'])}",
    ]
    return "\n".join(lines)


def bench_workload_subsystem(benchmark):
    builds, sweep, cache_trip = benchmark.pedantic(
        lambda: (run_build_timings(), run_dataset_sweep(), run_cache_round_trip()),
        rounds=1,
        iterations=1,
    )
    emit("W1_workloads", _render_report(builds, sweep, cache_trip))
    rmat = next(r for r in builds if r["family"] == "rmat")
    benchmark.extra_info["rmat_1e6_build_seconds"] = rmat["seconds"]
    benchmark.extra_info["warm_load_seconds"] = cache_trip["warm_load_seconds"]
    # The acceptance bar: a million-node R-MAT builds vectorized in
    # single-digit seconds.
    assert rmat["m"] >= 7_500_000
    assert rmat["seconds"] < RMAT_BUILD_BUDGET_SECONDS, (
        f"n=1e6 R-MAT build took {rmat['seconds']:.2f}s "
        f"(budget {RMAT_BUILD_BUDGET_SECONDS}s)"
    )


def build_report(build_n: int, sweep_n: int, acceptance_spec: str,
                 workers: int | None) -> dict:
    """The JSON document the CI ``workloads`` job uploads."""
    return {
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "builds": run_build_timings(build_n),
        "sweep": run_dataset_sweep(sweep_n, workers=workers),
        "cache_round_trip": run_cache_round_trip(acceptance_spec, workers=workers),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="bench-workloads.json")
    parser.add_argument("--build-n", type=int, default=BUILD_N)
    parser.add_argument("--sweep-n", type=int, default=SWEEP_N)
    parser.add_argument("--acceptance-spec", default=ACCEPTANCE_SPEC)
    parser.add_argument("--workers", type=int, default=None)
    args = parser.parse_args(argv)
    report = build_report(
        args.build_n, args.sweep_n, args.acceptance_spec, args.workers
    )
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    return 0


def smoke():
    """Smallest configuration: every stage at toy sizes."""
    import tempfile

    from repro.workloads import DATA_DIR_ENV

    builds = run_build_timings(n=5000)
    assert {row["family"] for row in builds} == {
        "rmat", "sbm", "geometric", "smallworld", "gnp",
    }
    with tempfile.TemporaryDirectory() as tmp:
        old = os.environ.get(DATA_DIR_ENV)
        os.environ[DATA_DIR_ENV] = tmp
        try:
            sweep = run_dataset_sweep(n=400, k=4, workers=2)
            assert len(sweep) == len(SWEEP_DATASETS) * len(SWEEP_ALGOS)
            trip = run_cache_round_trip(
                "rmat:n=4000,avg_deg=8,seed=7", k=4, workers=2
            )
            # Timings are rounded to milliseconds and smoke-sized builds
            # can tie; strict ordering is asserted by the full bench.
            assert trip["warm_load_seconds"] <= trip["cold_build_seconds"]
        finally:
            if old is None:
                os.environ.pop(DATA_DIR_ENV, None)
            else:
                os.environ[DATA_DIR_ENV] = old


if __name__ == "__main__":
    sys.exit(main())
