"""Experiment S1 — resident supersteps: shipping cut on the process engine.

PR 9 moves per-superstep driver state into the shard workers
(``Cluster.install_resident``) and outbox assembly worker-side
(``map_machines(..., assemble=...)``), so a process-engine superstep
ships only deltas out and one aggregate per worker back instead of
rebuilding and re-shipping the full per-machine payloads every
iteration.  This bench measures the superstep-stream throughput of the
legacy path (``resident=False``) against the resident path
(``resident=True``) on the *same* cached 1e6-node R-MAT PageRank run at
``k = 8``:

* **light-token regime** (``c = 0.05``, heavy path off, run to
  termination): per-iteration work is activity-proportional on the
  resident path but pays O(n) payload rebuild + shipping per machine on
  the legacy path — exactly the tax the PR removes;
* throughput = token iterations per second of *stream* time
  (:attr:`RunReport.wall_seconds` minus
  :attr:`RunReport.first_superstep_seconds`, so setup is excluded);
* both runs are traced, and the summed ``map_machines`` sub-spans
  (``ship_s`` / ``kernel_s`` / ``assemble_s`` / ``unpack_s`` /
  ``pool_wait_s``) land in the artifact — the resident run must show
  ``assemble_s`` (worker-side outbox packing) and the shipping story is
  visible as numbers, not vibes;
* results are asserted bit-identical between the two paths (estimates,
  rounds, messages, bits) — the speedup must be free.

Acceptance bar (recorded in the repo-committed ``BENCH_shipping.json``
trajectory, generated at full 1e6 scale before the PR): the resident
path streams supersteps at **>= 1.5x** the legacy path's throughput at
full scale.  CI re-runs the bench at a smaller dataset for the JSON
artifact (the bar is asserted only where the legacy stream is long
enough to carry signal) and schema-checks the committed trajectory.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _common import emit, workers_choice  # noqa: E402

DATASET = "rmat:n=1000000,avg_deg=16,seed=7"
ALGO = "pagerank"
#: Light-token regime run to termination: t0 = 1 token per vertex, no
#: heavy-vertex path, so the superstep stream is long (~85 iterations)
#: and the per-iteration payload tax dominates the legacy path.
ALGO_KWARGS = {"c": 0.05, "enable_heavy_path": False}
K = 8
SEED = 11
#: One worker by default: the shipping tax is per-superstep overhead,
#: and measuring it is cleanest without oversubscribing small hosts —
#: on a single-CPU runner extra workers slow *both* paths down.
DEFAULT_WORKERS = 1
#: The headline bar: resident-path superstep throughput vs legacy.
RESIDENT_SPEEDUP_FLOOR = 1.5
#: Below this legacy stream time the ratio is noise (smoke sizes).
MIN_STABLE_STREAM_SECONDS = 1.0


def _map_segment_totals(tracer) -> dict:
    """Summed ``map_machines`` sub-spans over a traced run."""
    totals: dict[str, float] = {}
    iterations = 0
    for event in tracer.events:
        if event.get("event") != "phase" or event.get("op") != "map_machines":
            continue
        iterations += 1
        for name, seconds in (event.get("segments") or {}).items():
            totals[name] = round(totals.get(name, 0.0) + seconds, 4)
    totals["map_phases"] = iterations
    return totals


def _run_mode(dataset: str, k: int, seed: int, workers: int,
              resident: bool) -> dict:
    from repro import runtime
    from repro.obs import Tracer

    tracer = Tracer()
    report = runtime.run(
        ALGO, dataset=dataset, k=k, seed=seed, engine="process",
        workers=workers, resident=resident, trace=tracer, **ALGO_KWARGS,
    )
    stream_seconds = report.wall_seconds - (report.first_superstep_seconds or 0.0)
    iterations = report.result.iterations
    return {
        "resident": resident,
        "iterations": iterations,
        "wall_seconds": round(report.wall_seconds, 4),
        "stream_seconds": round(stream_seconds, 4),
        "supersteps_per_second": round(iterations / max(stream_seconds, 1e-9), 2),
        "rounds": report.rounds,
        "messages": report.metrics.messages,
        "bits": report.metrics.bits,
        "map_segments": _map_segment_totals(tracer),
        "_estimates": report.result.estimates,
    }


def run_shipping_bench(dataset: str = DATASET, k: int = K, seed: int = SEED,
                       workers: int | None = None) -> dict:
    """Legacy vs resident superstep streaming on one cached dataset."""
    import numpy as np

    from repro import workloads
    from repro.kmachine.parallel import shutdown_worker_pools

    workers = workers or workers_choice() or DEFAULT_WORKERS
    prep_start = time.perf_counter()
    graph = workloads.materialize(dataset)  # cached: load or build+store
    prep_seconds = time.perf_counter() - prep_start

    # One throwaway run spawns the pool and persists the shard sidecars,
    # so both timed modes start from the same warm substrate.
    _run_mode(dataset, k, seed, workers, resident=True)

    legacy = _run_mode(dataset, k, seed, workers, resident=False)
    resident = _run_mode(dataset, k, seed, workers, resident=True)
    shutdown_worker_pools()

    # The speedup must be free: both paths are the same algorithm.
    assert np.array_equal(legacy.pop("_estimates"),
                          resident.pop("_estimates")), (
        "resident path diverged from the legacy path")
    for field in ("iterations", "rounds", "messages", "bits"):
        assert legacy[field] == resident[field], (
            f"{field} differs: legacy={legacy[field]} resident={resident[field]}")
    assert "assemble_s" in resident["map_segments"], (
        "resident run traced no worker-side assembly")

    return {
        "dataset": dataset,
        "algo": ALGO,
        "algo_kwargs": ALGO_KWARGS,
        "n": graph.n,
        "m": graph.m,
        "k": k,
        "workers": workers,
        "prep_seconds": round(prep_seconds, 3),
        "legacy": legacy,
        "resident": resident,
        "resident_speedup": round(
            resident["supersteps_per_second"]
            / max(legacy["supersteps_per_second"], 1e-9), 2),
    }


def check_acceptance(report: dict) -> None:
    """Assert the bar wherever the measurement carries signal."""
    ship = report["shipping"]
    if ship["legacy"]["stream_seconds"] >= MIN_STABLE_STREAM_SECONDS:
        assert ship["resident_speedup"] >= RESIDENT_SPEEDUP_FLOOR, (
            f"resident superstep streaming must be >= "
            f"{RESIDENT_SPEEDUP_FLOOR}x legacy, got "
            f"{ship['resident_speedup']}x "
            f"({ship['resident']['supersteps_per_second']} vs "
            f"{ship['legacy']['supersteps_per_second']} supersteps/s)"
        )


def _render_report(r: dict) -> str:
    ship = r["shipping"]
    lines = [
        f"S1 resident supersteps on {ship['dataset']} "
        f"(n={ship['n']}, m={ship['m']}, k={ship['k']}, "
        f"{ship['algo']}, process/{ship['workers']} workers):",
        "",
    ]
    for label in ("legacy", "resident"):
        mode = ship[label]
        lines.append(
            f"  {label:>8}: {mode['iterations']} iterations in "
            f"{mode['stream_seconds']:8.3f}s stream = "
            f"{mode['supersteps_per_second']:8.2f} supersteps/s")
        seg = dict(mode["map_segments"])
        seg.pop("map_phases", None)
        spans = "  ".join(f"{name}={seconds:.3f}s"
                          for name, seconds in sorted(seg.items()))
        lines.append(f"            {spans}")
    lines += [
        "",
        f"  resident speedup: {ship['resident_speedup']}x "
        f"(floor {RESIDENT_SPEEDUP_FLOOR}x; identical "
        f"rounds/messages/bits asserted)",
    ]
    return "\n".join(lines)


def bench_shipping(benchmark):
    report = benchmark.pedantic(build_report, rounds=1, iterations=1,
                                args=(DATASET,))
    emit("S1_shipping", _render_report(report))
    benchmark.extra_info.update({
        "resident_speedup": report["shipping"]["resident_speedup"],
        "legacy_supersteps_per_second":
            report["shipping"]["legacy"]["supersteps_per_second"],
        "resident_supersteps_per_second":
            report["shipping"]["resident"]["supersteps_per_second"],
    })
    check_acceptance(report)


def build_report(dataset: str, workers: int | None = None) -> dict:
    """The JSON document the CI ``engine-process`` job uploads."""
    return {
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "shipping": run_shipping_bench(dataset, workers=workers),
    }


def update_trajectory(path: Path, report: dict, label: str) -> None:
    """Append (or replace) this run's entry in the committed trajectory."""
    doc = {"bench": "shipping", "unit": "supersteps per second",
           "entries": []}
    if path.exists():
        doc = json.loads(path.read_text())
    ship = report["shipping"]
    entry = {
        "label": label,
        "host_cpus": report["host"]["cpu_count"],
        **{key: ship[key] for key in (
            "dataset", "algo", "k", "workers")},
        "iterations": ship["legacy"]["iterations"],
        "legacy_supersteps_per_second":
            ship["legacy"]["supersteps_per_second"],
        "resident_supersteps_per_second":
            ship["resident"]["supersteps_per_second"],
        "legacy_stream_seconds": ship["legacy"]["stream_seconds"],
        "resident_stream_seconds": ship["resident"]["stream_seconds"],
        "resident_assemble_seconds":
            ship["resident"]["map_segments"].get("assemble_s"),
        "resident_ship_seconds":
            ship["resident"]["map_segments"].get("ship_s"),
        "legacy_ship_seconds":
            ship["legacy"]["map_segments"].get("ship_s"),
        "resident_speedup": ship["resident_speedup"],
    }
    doc["entries"] = [e for e in doc["entries"] if e["label"] != label]
    doc["entries"].append(entry)
    path.write_text(json.dumps(doc, indent=2) + "\n")


def smoke():
    """Smallest configuration: the full comparison on a toy R-MAT."""
    from repro.workloads import DATA_DIR_ENV

    with tempfile.TemporaryDirectory() as tmp:
        old = os.environ.get(DATA_DIR_ENV)
        os.environ[DATA_DIR_ENV] = tmp
        try:
            report = {
                "host": {"cpu_count": os.cpu_count()},
                "shipping": run_shipping_bench(
                    "rmat:n=2000,avg_deg=8,seed=7", k=4, workers=2),
            }
            check_acceptance(report)  # guarded: smoke times are noise
        finally:
            if old is None:
                os.environ.pop(DATA_DIR_ENV, None)
            else:
                os.environ[DATA_DIR_ENV] = old


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="bench-shipping.json")
    parser.add_argument("--dataset", default=DATASET)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--trajectory", default=None,
                        help="also record this run in the committed "
                             "BENCH_shipping.json trajectory file")
    parser.add_argument("--label", default="PR9",
                        help="trajectory entry label (default: PR9)")
    args = parser.parse_args(argv)
    report = build_report(args.dataset, workers=args.workers)
    # Persist the artifact before asserting, so a failed bar still
    # leaves the measurements on disk for diagnosis.
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    emit("S1_shipping", _render_report(report))
    check_acceptance(report)
    if args.trajectory:
        update_trajectory(Path(args.trajectory), report, args.label)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
