"""Experiment X2 — §1.3: MST under random partition.

The paper's §1.3 discussion: the General Lower Bound Theorem gives
``Ω̃(n/k²)`` for MST directly (lower-bound input: complete graph with
random edge weights), tight by the SPAA'16 algorithm.  The bench runs
the proxy-based Borůvka of :mod:`repro.core.mst` on that input, checks
exact agreement with Kruskal, verifies the lower-bound sandwich, and
reports the k-scaling.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np

import repro
from repro.core.lowerbounds.extensions import mst_round_lower_bound
from repro.core.mst import kruskal_mst
from repro.experiments.fits import fit_power_law
from repro.experiments.harness import Sweep

from _common import emit, log2ceil, run_algorithm

N = 300
KS = (4, 8, 16, 32)


def run_sweep():
    g = repro.complete_graph(N)
    w = np.random.default_rng(0).random(g.m)
    _, ref_total = kruskal_mst(g, w)
    B = log2ceil(N)
    sweep = Sweep(f"X2: MST on K_{N} with random weights, B={B}")
    for k in KS:
        res = run_algorithm("mst", g, k, seed=1, bandwidth=B, weights=w).result
        assert res.total_weight == ref_total
        envelope = mst_round_lower_bound(N, k, B)
        sweep.add(
            {"k": k},
            {
                "measured_rounds": res.rounds,
                "lb_envelope_rounds": round(envelope, 2),
                "ratio": round(res.rounds / envelope, 1),
                "phases": res.phases,
                "mst_weight": round(res.total_weight, 4),
            },
        )
    return sweep


def bench_x2_mst(benchmark):
    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    fit = fit_power_law(sweep.column("k"), sweep.column("measured_rounds"))
    emit(
        "X2_mst",
        sweep.render()
        + f"\n\nfit: rounds ~ k^{fit.exponent:.2f}  (§1.3 LB: Ω̃(n/k²); the SPAA'16"
        " algorithm is tight — ours is Borůvka+proxies, within log factors)",
    )
    benchmark.extra_info["exponent"] = fit.exponent
    for row in sweep.rows:
        assert row.values["measured_rounds"] >= row.values["lb_envelope_rounds"]
    assert fit.exponent < -1.2

def smoke():
    """Smallest configuration: MST on a small complete graph vs Kruskal."""
    g = repro.complete_graph(24)
    w = np.random.default_rng(0).random(g.m)
    _, ref_total = kruskal_mst(g, w)
    res = run_algorithm("mst", g, 4, seed=1, bandwidth=log2ceil(24), weights=w).result
    assert res.total_weight == ref_total
