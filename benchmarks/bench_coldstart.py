"""Experiment C2 — sub-second cold start from mmap'd shard snapshots.

A k-machine experiment pays three taxes before its first superstep:
generate (or load) the graph, partition it, and materialize the
per-machine :class:`DistributedGraph` shards.  PR 7 attacks all three:
generators shard across a worker pool (bit-identical to serial), and the
materialized shards persist as mmap-friendly sidecars next to the CSR
snapshot, so a warm start maps them back read-only instead of rebuilding.
This bench measures the cold-start ladder on a cached 1e6-node R-MAT at
``k = 8``, using :attr:`RunReport.first_superstep_seconds` (process entry
to first superstep activity) as the cold-start clock:

* **rebuild** — snapshots disabled: CSR load + partition + shard build,
  the pre-PR-7 floor for every fresh process;
* **snapshot store** — first snapshot-enabled start: same work plus the
  one-time sidecar write;
* **snapshot warm** — sidecars present: CSR load + read-only ``mmap`` of
  the shard sections, the steady-state cold start.

A second, graph-resident pair times shard *acquisition* directly (CSR
and partition in hand, every lazily-built view touched): materializing
the per-machine shards from the CSR vs mapping the sidecar back — the
exact cost the snapshots remove, isolated from the shared CSR load.

Acceptance bars asserted here (and recorded in the repo-committed
``BENCH_coldstart.json`` trajectory): the warm start reaches its first
superstep in **< 1 s** at full scale, and mmap'd snapshot load is at
least **5x** faster than shard re-materialization.  A fourth section times parallel generation
(``--jobs``) against serial for one geometric spec; its **2x** bar
applies only on hosts with >= 4 CPUs (the sweep still runs elsewhere so
the numbers land in the artifact).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _common import emit  # noqa: E402

DATASET = "rmat:n=1000000,avg_deg=16,seed=7"
#: The cold-start clock stops at the *first* superstep, so the run
#: after it is pure overhead — cap PageRank at two iterations to keep
#: the bench about setup, not superstep throughput (counts are still
#: asserted identical across the three regimes).
ALGO = "pagerank"
ALGO_KWARGS = {"c": 0.5, "max_iterations": 2}
K = 8
SEED = 11
ENGINE = "vector"
#: The headline bar: steady-state cold start to first superstep.
WARM_BUDGET_SECONDS = 1.0
#: Warm mmap start vs rebuilding shards from the CSR.
WARM_SPEEDUP_FLOOR = 5.0
#: Below this rebuild time the speedup ratio is noise (smoke sizes).
MIN_STABLE_REBUILD_SECONDS = 0.2
#: The < 1 s budget is a full-scale claim, not a toy-graph tautology.
FULL_SCALE_N = 1_000_000
#: Parallel-generation section: one grid-scan family, serial vs sharded.
PARALLEL_SPEC = "geometric:n=400000,avg_deg=8,seed=7"
PARALLEL_JOBS = 4
PARALLEL_SPEEDUP_FLOOR = 2.0
#: The 2x bar only binds where the workers have cores to land on.
MIN_CPUS_FOR_PARALLEL_BAR = 4
MIN_STABLE_SERIAL_SECONDS = 0.5


def _first_superstep(dataset: str, k: int, seed: int) -> float:
    """One registry run from a cold in-process state; returns the
    process-entry-to-first-superstep time (CSR cache load included).

    The seed must be the same across compared runs: the partition —
    and so the sidecar digest — derives from it.
    """
    from repro import runtime
    from repro.kmachine.distgraph import clear_distgraph_cache

    clear_distgraph_cache()  # a fresh process has no resident shards
    report = runtime.run(ALGO, dataset=dataset, k=k, seed=seed,
                         engine=ENGINE, **ALGO_KWARGS)
    assert report.first_superstep_seconds is not None
    return report.first_superstep_seconds


def _touch_shards(dg) -> None:
    """Force every lazily-built view an engine touches over a run."""
    dg.nbr_home
    for i in range(dg.k):
        shard = dg.shard(i)
        shard.indptr, shard.indices, shard.nbr_home, shard.vertices


def _shard_acquisition(graph, k: int, seed: int) -> tuple[float, float]:
    """(rematerialize, mmap-load) seconds for one resident partition."""
    import numpy as np

    from repro.kmachine.distgraph import (
        SHARD_SNAPSHOTS_ENV,
        cached_distgraph,
        clear_distgraph_cache,
    )
    from repro.kmachine.partition import random_vertex_partition

    partition = random_vertex_partition(
        graph.n, k, seed=np.random.default_rng(seed))

    os.environ[SHARD_SNAPSHOTS_ENV] = "0"
    clear_distgraph_cache()
    start = time.perf_counter()
    _touch_shards(cached_distgraph(graph, partition))
    rebuild_seconds = time.perf_counter() - start

    os.environ.pop(SHARD_SNAPSHOTS_ENV, None)
    clear_distgraph_cache()  # else the LRU hit would skip the write-through
    _touch_shards(cached_distgraph(graph, partition))  # write the sidecar
    clear_distgraph_cache()
    start = time.perf_counter()
    _touch_shards(cached_distgraph(graph, partition))
    warm_seconds = time.perf_counter() - start
    return rebuild_seconds, warm_seconds


def run_coldstart_bench(dataset: str = DATASET, k: int = K,
                        seed: int = SEED) -> dict:
    """Measure the rebuild -> store -> warm cold-start ladder."""
    from repro import workloads
    from repro.kmachine.distgraph import SHARD_SNAPSHOTS_ENV
    from repro.workloads import parse_spec
    from repro.workloads.cache import default_cache

    prep_start = time.perf_counter()
    graph = workloads.materialize(dataset)  # cached: load or build+store
    prep_seconds = time.perf_counter() - prep_start

    # Start from a clean slate: no sidecars for this dataset on disk.
    cache = default_cache()
    key = parse_spec(dataset).content_hash()
    for shard_k, digest in cache.list_shards(key):
        for path in cache._shard_paths(key, shard_k, digest):
            path.unlink(missing_ok=True)

    old_flag = os.environ.get(SHARD_SNAPSHOTS_ENV)
    try:
        # Dataset-path ladder: each run is a full process cold start
        # (CSR cache load included) — the < 1 s budget applies here.
        os.environ[SHARD_SNAPSHOTS_ENV] = "0"
        rebuild_seconds = _first_superstep(dataset, k, seed)

        os.environ.pop(SHARD_SNAPSHOTS_ENV, None)
        store_seconds = _first_superstep(dataset, k, seed)
        assert cache.list_shards(key), "snapshot store left no sidecar"
        warm_seconds = _first_superstep(dataset, k, seed)

        # Shard-acquisition pair: the CSR is already in memory and the
        # partition is in hand, so the clock isolates exactly what the
        # snapshots replace — materializing every per-machine shard
        # from the CSR vs mapping the sidecar back.  Shards build
        # lazily, so each acquisition also touches every view an
        # engine would (the first-superstep clock alone would hide the
        # deferred build cost).  The 5x floor applies here.
        shard_rebuild_seconds, shard_warm_seconds = _shard_acquisition(
            graph, k, seed)
    finally:
        if old_flag is None:
            os.environ.pop(SHARD_SNAPSHOTS_ENV, None)
        else:
            os.environ[SHARD_SNAPSHOTS_ENV] = old_flag

    return {
        "dataset": dataset,
        "algo": ALGO,
        "n": graph.n,
        "m": graph.m,
        "k": k,
        "engine": ENGINE,
        "prep_seconds": round(prep_seconds, 3),
        "rebuild_first_superstep_seconds": round(rebuild_seconds, 4),
        "store_first_superstep_seconds": round(store_seconds, 4),
        "warm_first_superstep_seconds": round(warm_seconds, 4),
        "shard_rebuild_seconds": round(shard_rebuild_seconds, 4),
        "shard_warm_seconds": round(shard_warm_seconds, 4),
        "warm_speedup_vs_rebuild": round(
            shard_rebuild_seconds / shard_warm_seconds, 1),
    }


def run_parallel_bench(spec: str = PARALLEL_SPEC,
                       jobs: int = PARALLEL_JOBS) -> dict:
    """Serial vs sharded generation for one spec (always bit-identical)."""
    from repro.workloads.spec import build_dataset

    start = time.perf_counter()
    serial = build_dataset(spec)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = build_dataset(spec, jobs=jobs)
    parallel_seconds = time.perf_counter() - start

    import numpy as np

    assert np.array_equal(serial.edges, parallel.edges), (
        "parallel generation must be bit-identical to serial"
    )
    return {
        "spec": spec,
        "n": serial.n,
        "m": serial.m,
        "jobs": jobs,
        "serial_seconds": round(serial_seconds, 3),
        "parallel_seconds": round(parallel_seconds, 3),
        "parallel_speedup": round(serial_seconds / parallel_seconds, 2),
    }


def check_acceptance(report: dict) -> None:
    """Assert the bars wherever the measurement carries signal."""
    cold = report["coldstart"]
    if cold["shard_rebuild_seconds"] >= MIN_STABLE_REBUILD_SECONDS:
        assert cold["warm_speedup_vs_rebuild"] >= WARM_SPEEDUP_FLOOR, (
            f"mmap'd snapshot load ({cold['shard_warm_seconds']}s) must be "
            f">= {WARM_SPEEDUP_FLOOR}x faster than shard rematerialization "
            f"({cold['shard_rebuild_seconds']}s)"
        )
    if cold["n"] >= FULL_SCALE_N:
        assert cold["warm_first_superstep_seconds"] < WARM_BUDGET_SECONDS, (
            f"cached cold start must reach its first superstep in "
            f"< {WARM_BUDGET_SECONDS}s, took "
            f"{cold['warm_first_superstep_seconds']}s"
        )
    par = report["parallel"]
    cpus = os.cpu_count() or 1
    if (cpus >= MIN_CPUS_FOR_PARALLEL_BAR
            and par["serial_seconds"] >= MIN_STABLE_SERIAL_SECONDS):
        assert par["parallel_speedup"] >= PARALLEL_SPEEDUP_FLOOR, (
            f"parallel generation ({par['jobs']} jobs on {cpus} CPUs) must "
            f"be >= {PARALLEL_SPEEDUP_FLOOR}x serial, got "
            f"{par['parallel_speedup']}x"
        )


def _render_report(r: dict) -> str:
    cold, par = r["coldstart"], r["parallel"]
    return "\n".join([
        f"C2 cold start on {cold['dataset']} "
        f"(n={cold['n']}, m={cold['m']}, k={cold['k']}, "
        f"{cold['algo']}/{cold['engine']}):",
        "",
        f"  dataset prep (cached materialize):   {cold['prep_seconds']:9.3f}s",
        "  process cold start to first superstep (CSR load included):",
        f"    rebuild (snapshots off):           "
        f"{cold['rebuild_first_superstep_seconds']:9.4f}s",
        f"    snapshot store (first warm write): "
        f"{cold['store_first_superstep_seconds']:9.4f}s",
        f"    snapshot warm (mmap):              "
        f"{cold['warm_first_superstep_seconds']:9.4f}s"
        f"  (budget {WARM_BUDGET_SECONDS}s at full scale)",
        "  shard acquisition alone (CSR resident):",
        f"    rematerialize:                     "
        f"{cold['shard_rebuild_seconds']:9.4f}s",
        f"    mmap'd snapshot:                   "
        f"{cold['shard_warm_seconds']:9.4f}s",
        "",
        f"  warm speedup vs rematerialization: "
        f"{cold['warm_speedup_vs_rebuild']}x (floor {WARM_SPEEDUP_FLOOR}x)",
        "",
        f"  parallel generation, {par['spec']} (n={par['n']}, m={par['m']}):",
        f"    serial:            {par['serial_seconds']:9.3f}s",
        f"    --jobs {par['jobs']}:          {par['parallel_seconds']:9.3f}s"
        f"  = {par['parallel_speedup']}x"
        f"  (floor {PARALLEL_SPEEDUP_FLOOR}x on >= "
        f"{MIN_CPUS_FOR_PARALLEL_BAR} CPUs; host has {os.cpu_count()})",
    ])


def bench_coldstart(benchmark):
    report = benchmark.pedantic(build_report, rounds=1, iterations=1,
                                args=(DATASET, PARALLEL_SPEC))
    emit("C2_coldstart", _render_report(report))
    benchmark.extra_info.update({
        "warm_first_superstep_seconds":
            report["coldstart"]["warm_first_superstep_seconds"],
        "warm_speedup_vs_rebuild":
            report["coldstart"]["warm_speedup_vs_rebuild"],
        "parallel_speedup": report["parallel"]["parallel_speedup"],
    })
    check_acceptance(report)


def build_report(dataset: str, parallel_spec: str) -> dict:
    """The JSON document the CI ``coldstart`` job uploads."""
    return {
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "coldstart": run_coldstart_bench(dataset),
        "parallel": run_parallel_bench(parallel_spec),
    }


def update_trajectory(path: Path, report: dict, label: str) -> None:
    """Append (or replace) this run's entry in the committed trajectory."""
    doc = {"bench": "coldstart", "unit": "seconds to first superstep",
           "entries": []}
    if path.exists():
        doc = json.loads(path.read_text())
    entry = {
        "label": label,
        "host_cpus": report["host"]["cpu_count"],
        **{key: report["coldstart"][key] for key in (
            "dataset", "algo", "k", "engine",
            "rebuild_first_superstep_seconds",
            "store_first_superstep_seconds",
            "warm_first_superstep_seconds",
            "shard_rebuild_seconds",
            "shard_warm_seconds",
            "warm_speedup_vs_rebuild",
        )},
        "parallel_spec": report["parallel"]["spec"],
        "parallel_jobs": report["parallel"]["jobs"],
        "parallel_speedup": report["parallel"]["parallel_speedup"],
    }
    doc["entries"] = [e for e in doc["entries"] if e["label"] != label]
    doc["entries"].append(entry)
    path.write_text(json.dumps(doc, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="bench-coldstart.json")
    parser.add_argument("--dataset", default=DATASET)
    parser.add_argument("--parallel-spec", default=PARALLEL_SPEC)
    parser.add_argument("--trajectory", default=None,
                        help="also record this run in the committed "
                             "BENCH_coldstart.json trajectory file")
    parser.add_argument("--label", default="PR7",
                        help="trajectory entry label (default: PR7)")
    args = parser.parse_args(argv)
    report = build_report(args.dataset, args.parallel_spec)
    # Persist the artifact before asserting, so a failed bar still
    # leaves the measurements on disk for diagnosis.
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    emit("C2_coldstart", _render_report(report))
    check_acceptance(report)
    if args.trajectory:
        update_trajectory(Path(args.trajectory), report, args.label)
    return 0


def smoke():
    """Smallest configuration: the whole ladder on a toy R-MAT."""
    from repro.workloads import DATA_DIR_ENV

    with tempfile.TemporaryDirectory() as tmp:
        old = os.environ.get(DATA_DIR_ENV)
        os.environ[DATA_DIR_ENV] = tmp
        try:
            report = {
                "host": {"cpu_count": os.cpu_count()},
                "coldstart": run_coldstart_bench(
                    "rmat:n=2000,avg_deg=8,seed=7", k=4),
                "parallel": run_parallel_bench(
                    "geometric:n=2000,avg_deg=8,seed=7", jobs=2),
            }
            check_acceptance(report)  # guarded: smoke times are noise
            assert report["coldstart"]["warm_first_superstep_seconds"] > 0
        finally:
            if old is None:
                os.environ.pop(DATA_DIR_ENV, None)
            else:
                os.environ[DATA_DIR_ENV] = old


if __name__ == "__main__":
    raise SystemExit(main())
