"""Emit the process-vs-vector engine comparison as one JSON artifact.

Runs the PageRank and triangle ``run_process_comparison`` benches at a
configurable (default: CI-sized) scale and writes a single JSON document
with per-engine wall-clock timings, the byte-identical count tuples, and
host context — the file CI uploads as a workflow artifact so engine
performance is trackable across commits without rerunning anything.

Usage::

    PYTHONPATH=src python benchmarks/process_comparison_report.py \
        [--out bench-process-comparison.json] [--n-pagerank 20000] \
        [--n-triangles 20000] [--workers 2]

Counts are asserted identical inside each comparison (always, on any
host); speedups are reported, not asserted — the full benches own the
``>= 1.5x`` assertions on >= 4-CPU hosts.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import bench_pagerank_rounds
import bench_triangle_rounds


def build_report(n_pagerank: int, n_triangles: int, workers: int) -> dict:
    """Run both comparisons and collect one JSON-ready document."""
    report = {
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "workers": workers,
        "comparisons": {},
    }
    timings, counts = bench_pagerank_rounds.run_process_comparison(
        n=n_pagerank, k=8, workers=workers, max_iterations=2, c=2.0
    )
    report["comparisons"]["pagerank"] = {
        "n": n_pagerank,
        "timings_seconds": timings,
        "counts": {eng: list(c) for eng, c in counts.items()},
        "speedup": timings["vector"] / timings["process"],
    }
    timings, counts = bench_triangle_rounds.run_process_comparison(
        n=n_triangles, k=27, workers=workers
    )
    report["comparisons"]["triangles"] = {
        "n": n_triangles,
        "timings_seconds": timings,
        "counts": {eng: list(c) for eng, c in counts.items()},
        "speedup": timings["vector"] / timings["process"],
    }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="bench-process-comparison.json")
    parser.add_argument("--n-pagerank", type=int, default=20_000)
    parser.add_argument("--n-triangles", type=int, default=20_000)
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)
    report = build_report(args.n_pagerank, args.n_triangles, args.workers)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    return 0


def smoke():
    """Smallest configuration: both comparisons at toy sizes."""
    report = build_report(n_pagerank=500, n_triangles=400, workers=2)
    assert set(report["comparisons"]) == {"pagerank", "triangles"}
    for comp in report["comparisons"].values():
        assert comp["counts"]["vector"] == comp["counts"]["process"]


if __name__ == "__main__":
    sys.exit(main())
