"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's quantitative artifacts (a
theorem's scaling law, a lemma's whp event, Figure 1's separation) as an
ASCII table, written both to stdout (visible with ``pytest -s``) and to
``benchmarks/results/<name>.txt`` so the artifacts persist.  The timed
callable passed to pytest-benchmark is the sweep itself, run exactly once
(``pedantic(rounds=1)``): wall time measures the simulator, while the
*reproduction target* is the printed round/message counts.

Execution backend
-----------------
Benches that run simulator drivers select the execution engine through
:func:`engine_choice`, which reads the ``REPRO_ENGINE`` environment
variable (``message``, ``vector``, or ``process``; default ``vector``,
the fast in-process backend — counts are engine-independent, see the
CLI's ``--engine`` flag).  With ``process``, ``REPRO_WORKERS`` sizes
the shard-worker pool (default: CPU count).  Example::

    REPRO_ENGINE=message pytest benchmarks/bench_pagerank_rounds.py
    REPRO_ENGINE=process REPRO_WORKERS=4 pytest benchmarks/bench_pagerank_rounds.py

Registry runs
-------------
Benches invoke algorithm families through :func:`run_algorithm`, a thin
wrapper over :func:`repro.runtime.run` that applies the bench engine
default — so adding a workload to the bench suite means registering a
spec, not writing new plumbing.  Seeded registry runs are bit-identical
to calling the family entry points directly.

Every bench module also exposes a ``smoke()`` function running its
smallest configuration; ``tests/test_benchmarks_smoke.py`` imports and
runs all of them so bench scripts cannot rot silently.
"""

from __future__ import annotations

import math
import os
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Environment variable selecting the execution backend for benches.
ENGINE_ENV = "REPRO_ENGINE"
#: Environment variable sizing the process backend's worker pool.
WORKERS_ENV = "REPRO_WORKERS"


def engine_choice(default: str = "vector") -> str:
    """The execution engine benches should pass to simulator drivers."""
    choice = os.environ.get(ENGINE_ENV, default)
    if choice not in ("message", "vector", "process"):
        raise ValueError(
            f"{ENGINE_ENV} must be 'message', 'vector', or 'process', got {choice!r}"
        )
    return choice


def workers_choice() -> int | None:
    """Shard-worker pool size for ``REPRO_ENGINE=process`` (None = default)."""
    raw = os.environ.get(WORKERS_ENV)
    return int(raw) if raw else None


def run_algorithm(name, data, k, **kwargs):
    """Run a registered algorithm via the runtime registry.

    Returns the :class:`repro.runtime.RunReport`; the engine defaults to
    :func:`engine_choice` unless passed explicitly (with the worker-pool
    size from ``REPRO_WORKERS`` when the process backend is selected).
    """
    from repro.runtime import run

    kwargs.setdefault("engine", engine_choice())
    if kwargs["engine"] == "process":
        kwargs.setdefault("workers", workers_choice())
    return run(name, data, k, **kwargs)


def emit(name: str, text: str) -> None:
    """Print a bench artifact and persist it under benchmarks/results/."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def log2ceil(n: int) -> int:
    """``ceil(log2 n)`` — the bench-default bandwidth ``B = Θ(log n)``."""
    return max(1, math.ceil(math.log2(max(2, n))))
