"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's quantitative artifacts (a
theorem's scaling law, a lemma's whp event, Figure 1's separation) as an
ASCII table, written both to stdout (visible with ``pytest -s``) and to
``benchmarks/results/<name>.txt`` so the artifacts persist.  The timed
callable passed to pytest-benchmark is the sweep itself, run exactly once
(``pedantic(rounds=1)``): wall time measures the simulator, while the
*reproduction target* is the printed round/message counts.
"""

from __future__ import annotations

import math
from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def emit(name: str, text: str) -> None:
    """Print a bench artifact and persist it under benchmarks/results/."""
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def log2ceil(n: int) -> int:
    """``ceil(log2 n)`` — the bench-default bandwidth ``B = Θ(log n)``."""
    return max(1, math.ceil(math.log2(max(2, n))))
