"""Experiment S — §1.3: distributed sorting at ``Θ̃(n/k²)`` rounds.

The paper uses sorting as its first "cookbook" application beyond graphs:
the General Lower Bound Theorem gives ``Ω̃(n/k²)`` and a sample-sort
matches it.  The bench sweeps ``k``, prints measured rounds against the
lower envelope, and fits the exponent.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np

from repro.core.lowerbounds.extensions import sorting_round_lower_bound
from repro.experiments.fits import fit_power_law
from repro.experiments.harness import Sweep

from _common import emit, run_algorithm

N = 100_000
KS = (4, 8, 16, 32)


def run_sweep():
    values = np.random.default_rng(0).random(N)
    B = 64  # one element per round per link
    sweep = Sweep(f"S: distributed sorting, n={N}, B={B}")
    for k in KS:
        res = run_algorithm("sorting", values, k, seed=1, bandwidth=B).result
        assert np.all(np.diff(res.concatenated()) >= 0)
        envelope = sorting_round_lower_bound(N, k, B)
        sweep.add(
            {"k": k},
            {
                "measured_rounds": res.rounds,
                "lb_envelope_rounds": round(envelope, 1),
                "ratio": res.rounds / envelope,
                "block_imbalance": round(res.max_block_imbalance(), 3),
            },
        )
    return sweep


def bench_s_distributed_sorting(benchmark):
    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    ks = sweep.column("k")
    rounds = sweep.column("measured_rounds")
    fit = fit_power_law(ks, rounds)
    # The loaded regime (per-link volume far above the whp-deviation
    # scale) is k <= 16 at this n; the full fit includes the flattened
    # k=32 point for transparency.
    fit_loaded = fit_power_law(ks[:3], rounds[:3])
    emit(
        "S_sorting",
        sweep.render()
        + f"\n\nfit (all k): rounds ~ k^{fit.exponent:.2f}  (r2={fit.r_squared:.3f})"
        + f"\nfit (loaded regime k<=16): rounds ~ k^{fit_loaded.exponent:.2f}"
        f"  (paper: Θ̃(n/k²) = k^-2)",
    )
    benchmark.extra_info["exponent"] = fit.exponent
    benchmark.extra_info["loaded_exponent"] = fit_loaded.exponent
    for row in sweep.rows:
        assert row.values["measured_rounds"] >= row.values["lb_envelope_rounds"]
        assert row.values["block_imbalance"] < 2.0
    assert fit_loaded.exponent < -1.6
    assert fit.exponent < -1.4

def smoke():
    """Smallest configuration: one tiny sort on both engine paths."""
    values = np.random.default_rng(0).random(500)
    res = run_algorithm("sorting", values, 4, seed=1, bandwidth=64).result
    assert np.all(np.diff(res.concatenated()) >= 0)
