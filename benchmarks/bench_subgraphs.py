"""Experiment X1 — §1.2 generalization: clique and cycle enumeration.

The paper remarks that the triangle techniques generalize to other small
subgraphs.  The bench runs the color-4-tuple algorithm for K4 and C4 on
``G(n, p)`` inputs, checks exactness, fits the k-scaling, and verifies
the predicted ``m·Θ(k^{1/2})`` re-routing volume (vs ``m·k^{1/3}`` for
triangles — richer patterns cost more, as the theory predicts).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import repro
from repro.core.subgraphs.local import enumerate_c4_edges, enumerate_k4_edges
from repro.experiments.fits import fit_power_law
from repro.experiments.harness import Sweep

from _common import emit, log2ceil, run_algorithm

N = 90
KS = (16, 81, 256)


def run_sweep(pattern):
    g = repro.gnp_random_graph(N, 0.3, seed=0)
    B = log2ceil(N)
    local = enumerate_k4_edges if pattern == "k4" else enumerate_c4_edges
    expected = local(g.n, g.edges).shape[0]
    sweep = Sweep(f"X1: {pattern.upper()} enumeration on G({N}, 0.3), m={g.m}")
    for k in KS:
        res = run_algorithm(
            "subgraphs", g, k, pattern=pattern, seed=1, bandwidth=B
        ).result
        assert res.count == expected
        q = res.num_colors
        sweep.add(
            {"k": k, "m": g.m},
            {
                "rounds": res.rounds,
                "occurrences": res.count,
                "q": q,
                "edge_copies": res.metrics.messages + res.metrics.local_messages,
                "m*q(q+1)/2": g.m * q * (q + 1) // 2,
            },
        )
    return sweep


def bench_x1_subgraph_enumeration(benchmark):
    k4, c4 = benchmark.pedantic(
        lambda: (run_sweep("k4"), run_sweep("c4")), rounds=1, iterations=1
    )
    fit_k4 = fit_power_law(k4.column("k"), k4.column("rounds"))
    emit(
        "X1_subgraphs",
        k4.render()
        + f"\n\nfit: K4 rounds ~ k^{fit_k4.exponent:.2f} (superlinear-in-k speedup)"
        + "\n\n"
        + c4.render(),
    )
    for sweep in (k4, c4):
        rounds = sweep.column("rounds")
        assert rounds[0] > rounds[-1]  # improves with k
        for row in sweep.rows:
            # Proxy phase adds at most m extra copies on top of the
            # forwarding volume m*q(q+1)/2.
            assert row.values["edge_copies"] <= row.values["m*q(q+1)/2"] + row.params["m"]
            assert row.values["edge_copies"] >= row.values["m*q(q+1)/2"] * 0.9

def smoke():
    """Smallest configuration: K4 enumeration on a tiny graph."""
    g = repro.gnp_random_graph(24, 0.3, seed=0)
    expected = enumerate_k4_edges(g.n, g.edges).shape[0]
    res = run_algorithm(
        "subgraphs", g, 16, pattern="k4", seed=1, bandwidth=log2ceil(24)
    ).result
    assert res.count == expected
