"""Experiment F1/L4 — Figure 1 + Lemma 4: the PageRank separation.

Regenerates the quantitative content of the paper's only figure: on the
graph ``H``, the PageRank of ``v_i`` takes one of two values separated by
a constant factor depending on the edge-direction bit ``b_i``.  The bench
prints, per reset probability ``eps``:

* the two analytic Lemma-4 values and their ratio;
* the exact walk-series reference evaluated on a sampled instance
  (agreement is machine-precision);
* Algorithm 1's Monte-Carlo estimates and the fraction of ``b`` bits
  recovered by nearest-value classification (Lemma 7's reconstruction).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np

import repro
from repro.core.pagerank import lemma4
from repro.experiments.harness import Sweep

from _common import emit, run_algorithm

Q = 150
EPS_GRID = (0.1, 0.15, 0.25, 0.5)


def run_sweep():
    sweep = Sweep(f"F1/L4: Lemma-4 separation on H with q={Q}")
    inst = repro.pagerank_lowerbound_graph(q=Q, seed=0)
    n = inst.n
    for eps in EPS_GRID:
        exact = inst.analytic_pagerank(eps)
        reference = repro.pagerank_walk_series(inst.graph, eps=eps)
        res = run_algorithm("pagerank", inst.graph, 8, eps=eps, seed=1, c=120).result
        recovered = inst.infer_b(res.estimates, eps)
        sweep.add(
            {"eps": eps},
            {
                "value_b0*n": lemma4.value_b0(eps, n) * n,
                "value_b1*n": lemma4.value_b1(eps, n) * n,
                "ratio": lemma4.separation_ratio(eps),
                "analytic_vs_ref": float(np.abs(exact - reference).max()),
                "b_recovery_rate": float((recovered == inst.b).mean()),
            },
        )
    return sweep


def bench_f1_lemma4_separation(benchmark):
    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit("F1_lemma4_separation", sweep.render())
    for row in sweep.rows:
        # Analytic formulas match the independent reference to precision.
        assert row.values["analytic_vs_ref"] < 1e-12
        # Constant-factor separation for every eps (Lemma 4).
        assert row.values["ratio"] > 1.05
        # The Monte-Carlo approximation reveals (almost) all bits.
        assert row.values["b_recovery_rate"] > 0.95

def smoke():
    """Smallest configuration: one eps on a small Figure-1 instance."""
    inst = repro.pagerank_lowerbound_graph(q=10, seed=0)
    exact = inst.analytic_pagerank(0.25)
    reference = repro.pagerank_walk_series(inst.graph, eps=0.25)
    assert float(np.abs(exact - reference).max()) < 1e-12
    res = run_algorithm("pagerank", inst.graph, 4, eps=0.25, seed=1, c=20).result
    assert res.rounds > 0
