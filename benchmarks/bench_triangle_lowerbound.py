"""Experiments T3 + P2 — Theorem 3: the ``Ω̃(m/Bk^{5/3})`` triangle lower bound.

Per ``k`` on a ``G(n, 1/2)`` instance, the bench prints:

* the Theorem-3 envelope ``IC/(Bk)`` with ``IC = Θ((t/k)^{2/3})``
  evaluated at the *measured* triangle count (the paper's "real lower
  bound" ``Ω̃((t/k)^{2/3}/k)``);
* the Theorem-5 algorithm's measured rounds (the sandwich);
* Lemma 11's premise quantities: the max per-machine local triangle count
  ``t₃`` (must be ``o(t/k)``) and the max output per machine
  (``>= t/k`` for some machine, Lemma 9A);
* Proposition 2: the empirical max induced-edge count of random
  ``t``-subsets versus the ``3ηt²`` threshold.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np

import repro
from repro.core.lowerbounds.triangles import (
    induced_edge_count,
    local_triangles_per_machine,
    proposition2_edge_bound,
    triangle_round_lower_bound,
)
from repro.experiments.harness import Sweep
from repro.kmachine.partition import random_vertex_partition

from _common import emit, log2ceil, run_algorithm

N = 180
KS = (8, 27, 64)


def run_lb_sweep():
    g = repro.gnp_random_graph(N, 0.5, seed=0)
    B = log2ceil(N)
    sweep = Sweep(f"T3: triangle LB on G({N}, 1/2), B={B}")
    for k in KS:
        res = run_algorithm("triangles", g, k, seed=1, bandwidth=B).result
        t = res.count
        envelope = triangle_round_lower_bound(N, k, B, t=t)
        p = random_vertex_partition(N, k, seed=2)
        t3_max = int(local_triangles_per_machine(g, p).max())
        sweep.add(
            {"k": k},
            {
                "lb_envelope_rounds": envelope,
                "measured_rounds": res.rounds,
                "ratio": res.rounds / envelope,
                "t": t,
                "t_over_k": t / k,
                "t3_max": t3_max,
                "max_output_per_machine": int(res.per_machine_output.max()),
            },
        )
    return sweep


def run_prop2_check():
    g = repro.gnp_random_graph(400, 0.5, seed=3)
    rng = np.random.default_rng(4)
    sweep = Sweep("P2: induced-subgraph edge concentration (Rödl-Ruciński)")
    for t in (40, 80, 160):
        threshold = proposition2_edge_bound(g.m, g.n, t)
        worst = max(
            induced_edge_count(g, rng.choice(g.n, size=t, replace=False))
            for _ in range(30)
        )
        sweep.add(
            {"subset_size_t": t},
            {"max_induced_edges": worst, "prop2_threshold": threshold},
        )
    return sweep


def bench_t3_triangle_lower_bound(benchmark):
    lb, prop2 = benchmark.pedantic(
        lambda: (run_lb_sweep(), run_prop2_check()), rounds=1, iterations=1
    )
    emit("T3_triangle_lowerbound", lb.render() + "\n\n" + prop2.render())
    for row in lb.rows:
        assert row.values["measured_rounds"] >= row.values["lb_envelope_rounds"]
        # Lemma 11 premise: t3 = o(t/k); Lemma 9A: some machine outputs >= t/k.
        assert row.values["t3_max"] < row.values["t_over_k"]
        assert row.values["max_output_per_machine"] >= row.values["t_over_k"]
    for row in prop2.rows:
        assert row.values["max_induced_edges"] < row.values["prop2_threshold"]

def smoke():
    """Smallest configuration: the T3 sandwich + one Prop-2 sample."""
    g = repro.gnp_random_graph(40, 0.5, seed=0)
    B = log2ceil(40)
    res = run_algorithm("triangles", g, 8, seed=1, bandwidth=B).result
    assert res.rounds >= triangle_round_lower_bound(40, 8, B, t=max(1, res.count))
    rng = np.random.default_rng(4)
    sub = rng.choice(g.n, size=10, replace=False)
    assert induced_edge_count(g, sub) <= proposition2_edge_bound(g.m, g.n, 10)
