"""Experiment FN3 — footnote 3: REP → RVP conversion in ``Õ(m/k² + n/k)``.

The bench sweeps the edge count ``m`` and the machine count ``k``, runs
the conversion protocol, and checks measured rounds against the
``m/k²``-shaped envelope (the ``n/k`` additive term is negligible at
these sizes since home machines are hash-derived).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import repro
from repro.experiments.fits import fit_power_law
from repro.experiments.harness import Sweep
from repro.kmachine import LinkNetwork, random_edge_partition, rep_to_rvp

from _common import emit, log2ceil

N = 1500


def run_sweep():
    sweep = Sweep(f"FN3: REP->RVP conversion, n={N}")
    for p in (0.05, 0.1, 0.2):
        g = repro.gnp_random_graph(N, p, seed=int(p * 100))
        B = log2ceil(N)
        for k in (4, 8, 16, 32):
            net = LinkNetwork(k, bandwidth=B)
            ep = random_edge_partition(g.m, k, seed=1)
            _, metrics = rep_to_rvp(g.edges, g.n, ep, net, seed=2)
            sweep.add(
                {"m": g.m, "k": k},
                {
                    "measured_rounds": metrics.rounds,
                    "m_over_Bk2": round(2 * g.m * 2 * log2ceil(N) / (B * k * k), 1),
                },
            )
    return sweep


def bench_fn3_rep_conversion(benchmark):
    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    # Fit the k-exponent at the largest m.
    biggest_m = max(sweep.column("m"))
    rows = [r for r in sweep.rows if r.params["m"] == biggest_m]
    ks = [r.params["k"] for r in rows]
    rounds = [r.values["measured_rounds"] for r in rows]
    fit = fit_power_law(ks, rounds)
    emit(
        "FN3_rep_conversion",
        sweep.render()
        + f"\n\nfit at m={biggest_m}: rounds ~ k^{fit.exponent:.2f}  (paper: k^-2;"
        f" r2={fit.r_squared:.3f})",
    )
    benchmark.extra_info["exponent"] = fit.exponent
    assert fit.exponent < -1.5
    # Rounds track the m/k² envelope within a small constant.
    for r in sweep.rows:
        assert r.values["measured_rounds"] <= 4 * max(1.0, r.values["m_over_Bk2"])

def smoke():
    """Smallest configuration: one REP->RVP conversion."""
    g = repro.gnp_random_graph(60, 0.1, seed=5)
    net = LinkNetwork(4, bandwidth=log2ceil(60))
    ep = random_edge_partition(g.m, 4, seed=1)
    _, metrics = rep_to_rvp(g.edges, g.n, ep, net, seed=2)
    assert metrics.rounds > 0
