"""Experiment C2 — Corollary 2: round-optimal triangle enumeration needs
``Ω̃(n² k^{1/3})`` messages.

The bench measures the total message complexity of the Theorem-5
algorithm (which is round-optimal up to polylogs) on dense inputs and
compares its growth in ``k`` against the Corollary-2 envelope: total
messages must *grow* with k (``~k^{1/3}``), ruling out
aggregate-at-one-machine strategies (O(m) messages) for round-optimal
algorithms.  It also verifies the per-machine receive balance the
corollary's argument rests on.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import repro
from repro.experiments.fits import fit_power_law
from repro.experiments.harness import Sweep

from _common import emit, log2ceil, run_algorithm

N = 200
KS = (8, 27, 64, 125)


def run_sweep():
    g = repro.gnp_random_graph(N, 0.5, seed=0)
    B = log2ceil(N)
    sweep = Sweep(f"C2: message complexity of round-optimal triangles, G({N},1/2), m={g.m}")
    for k in KS:
        res = run_algorithm("triangles", g, k, seed=1, bandwidth=B).result
        total = res.metrics.messages + res.metrics.local_messages
        sweep.add(
            {"k": k},
            {
                "total_messages": total,
                "m*k^(1/3)": round(g.m * k ** (1 / 3)),
                "messages_over_m": total / g.m,
                "max_machine_recv": res.metrics.max_machine_received,
                "mean_machine_recv": res.metrics.messages / k,
            },
        )
    return sweep


def bench_c2_message_complexity(benchmark):
    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    ks = sweep.column("k")
    fit = fit_power_law(ks, sweep.column("total_messages"))
    text = sweep.render() + (
        f"\n\nfit: total messages ~ k^{fit.exponent:.2f}"
        f"  (Corollary 2 envelope: k^(1/3) = k^0.33; r2={fit.r_squared:.3f})"
    )
    emit("C2_message_complexity", text)
    benchmark.extra_info["exponent"] = fit.exponent

    for row in sweep.rows:
        # The k^{1/3} re-routing blow-up: volume well above m, tracking
        # the m*k^{1/3} envelope within a small constant.
        assert row.values["total_messages"] >= row.values["m*k^(1/3)"] * 0.8
    # Messages grow with k — the signature of Corollary 2.
    assert 0.15 < fit.exponent < 0.6

def smoke():
    """Smallest configuration: one dense triangle run's message totals."""
    g = repro.gnp_random_graph(40, 0.5, seed=0)
    res = run_algorithm("triangles", g, 8, seed=1, bandwidth=log2ceil(40)).result
    assert res.metrics.messages + res.metrics.local_messages > 0
