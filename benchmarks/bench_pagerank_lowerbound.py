"""Experiments T2 + L5 — Theorem 2: the ``Ω̃(n/Bk²)`` PageRank lower bound.

On sampled Figure-1 instances this bench prints, per ``k``:

* the Theorem-2 envelope ``IC/(Bk) = (n-1)/(4Bk²)``;
* Algorithm 1's measured rounds (must sit above the envelope — the
  sandwich that certifies both theorems' consistency);
* Lemma 5's whp event: the max number of weakly-connected chains any
  machine learns from the RVP for free, versus the ``O(n log n/k²)``
  bound (Premise (1) of the General Lower Bound Theorem).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import repro
from repro.core.lowerbounds.pagerank import (
    lemma5_measured_paths,
    lemma5_path_bound,
    pagerank_round_lower_bound,
)
from repro.experiments.harness import Sweep
from repro.kmachine.partition import random_vertex_partition

from _common import emit, log2ceil, run_algorithm

Q = 1000  # n = 4001
KS = (4, 8, 16, 32)
TRIALS = 5


def run_sweep():
    inst = repro.pagerank_lowerbound_graph(q=Q, seed=0)
    n = inst.n
    B = log2ceil(n)
    sweep = Sweep(f"T2: PageRank LB on Figure-1 graph H, n={n}, B={B}")
    for k in KS:
        envelope = pagerank_round_lower_bound(n, k, B)
        res = run_algorithm("pagerank", inst.graph, k, seed=1, c=2, bandwidth=B).result
        max_paths = 0
        for t in range(TRIALS):
            p = random_vertex_partition(n, k, seed=100 + t)
            max_paths = max(max_paths, int(lemma5_measured_paths(inst, p).max()))
        sweep.add(
            {"k": k},
            {
                "lb_envelope_rounds": envelope,
                "measured_rounds": res.rounds,
                "ratio": res.rounds / envelope,
                "lemma5_max_paths": max_paths,
                "lemma5_bound": lemma5_path_bound(n, k),
            },
        )
    return sweep


def bench_t2_pagerank_lower_bound(benchmark):
    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit("T2_pagerank_lowerbound", sweep.render())
    for row in sweep.rows:
        # The sandwich: measured >= envelope on every configuration.
        assert row.values["measured_rounds"] >= row.values["lb_envelope_rounds"]
        # Lemma 5's whp event held on every sampled partition.
        assert row.values["lemma5_max_paths"] <= row.values["lemma5_bound"]

def smoke():
    """Smallest configuration: the T2 sandwich on a tiny instance."""
    inst = repro.pagerank_lowerbound_graph(q=20, seed=0)
    B = log2ceil(inst.n)
    res = run_algorithm("pagerank", inst.graph, 4, seed=1, c=2, bandwidth=B).result
    assert res.rounds >= pagerank_round_lower_bound(inst.n, 4, B)
