"""Experiments L12/L14 — Lemmas 12 and 14: Algorithm 1's load balance.

Lemma 12: every machine sends ``O(n log n / k)`` messages in any
iteration whp.  Lemma 14: each iteration's messages deliver in
``Õ(n/k²)`` rounds.  The bench instruments Algorithm 1 per iteration and
prints the worst per-machine send/receive counts and per-iteration round
costs against the lemma envelopes.
"""

from __future__ import annotations

import math
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import repro
from repro.experiments.harness import Sweep

from _common import emit, log2ceil, run_algorithm

N = 4000
KS = (8, 16, 32)


def run_sweep():
    g = repro.gnp_random_graph(N, 5.0 / N, seed=0)
    B = log2ceil(N)
    sweep = Sweep(f"L12/L14: Algorithm-1 per-iteration load, G({N}, 5/n), B={B}")
    for k in KS:
        res = run_algorithm("pagerank", g, k, seed=1, c=1, bandwidth=B).result
        worst_sent = max(s.max_machine_sent for s in res.iteration_stats)
        worst_recv = max(s.max_machine_received for s in res.iteration_stats)
        worst_rounds = max(s.rounds for s in res.iteration_stats)
        lemma12_bound = 8 * (N / k) * math.log2(N)
        lemma14_bound = 8 * (N / k**2) * math.log2(N)
        sweep.add(
            {"k": k},
            {
                "worst_iter_sent": worst_sent,
                "lemma12_bound": round(lemma12_bound),
                "worst_iter_recv": worst_recv,
                "worst_iter_rounds": worst_rounds,
                "lemma14_bound": round(lemma14_bound, 1),
                "iterations": res.iterations,
            },
        )
    return sweep


def bench_l12_l14_load_balance(benchmark):
    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit("L12_L14_load_balance", sweep.render())
    for row in sweep.rows:
        assert row.values["worst_iter_sent"] <= row.values["lemma12_bound"]
        assert row.values["worst_iter_recv"] <= row.values["lemma12_bound"]
        assert row.values["worst_iter_rounds"] <= max(2, row.values["lemma14_bound"])

def smoke():
    """Smallest configuration: per-iteration stats on a tiny graph."""
    g = repro.gnp_random_graph(120, 5.0 / 120, seed=0)
    res = run_algorithm("pagerank", g, 4, seed=1, c=1, bandwidth=log2ceil(120)).result
    assert res.iteration_stats and res.iteration_stats[0].max_machine_sent >= 0
