#!/usr/bin/env python
"""Check committed BENCH_*.json perf trajectories against their floors.

Every bench family commits a trajectory file at the repo root
(``BENCH_serve.json``, ``BENCH_obs.json``, ...) regenerated at full
scale before each PR; CI re-validates the committed numbers against the
acceptance floors so the perf story cannot silently regress or rot.
This script is that validation, consolidated: one table of per-bench
checks instead of one inline heredoc per CI job.

Usage::

    python benchmarks/check_trajectory.py BENCH_obs.json [BENCH_serve.json ...]

Exit status 0 when every entry of every file passes, 1 otherwise.

A check is ``(field, op, limit)``; a string ``limit`` names another
field of the same entry (e.g. warm concurrent throughput must beat the
cold single-shot baseline), and the special ops ``notnull`` / ``isnull``
take no limit.  Unknown bench names fail loudly — a new bench family
must register its floors here to ride the consolidated checker.
"""

from __future__ import annotations

import json
import operator
import sys
from pathlib import Path

#: bench name -> [(field, op, limit-or-field-reference), ...]
CHECKS: dict[str, list[tuple]] = {
    "serve": [
        ("hit_speedup_vs_cold", ">=", 5.0),
        ("warm_concurrent_hit_rps", ">", "cold_single_shot_rps"),
    ],
    "obs": [
        ("overhead_ratio", "<", 1.05),
        ("coverage", ">=", 0.90),
    ],
    "coldstart": [
        ("warm_first_superstep_seconds", "<", 1.0),
        ("warm_speedup_vs_rebuild", ">=", 5.0),
    ],
    "shipping": [
        ("resident_speedup", ">=", 1.5),
        ("resident_assemble_seconds", "notnull", None),
    ],
}

_OPS = {
    ">": operator.gt,
    ">=": operator.ge,
    "<": operator.lt,
    "<=": operator.le,
}


def check_entry(entry: dict, checks: list[tuple]) -> list[str]:
    """Failure messages for one trajectory entry (empty = pass)."""
    failures = []
    label = entry.get("label", "?")
    for field, op, limit in checks:
        value = entry.get(field)
        if op == "notnull":
            if value is None:
                failures.append(f"{label}: {field} is null")
            continue
        if op == "isnull":
            if value is not None:
                failures.append(f"{label}: {field} = {value!r}, expected null")
            continue
        bound = entry.get(limit) if isinstance(limit, str) else limit
        shown = f"{limit} ({bound})" if isinstance(limit, str) else f"{bound}"
        if value is None or bound is None:
            failures.append(
                f"{label}: {field} {op} {shown} not checkable "
                f"(value={value!r})"
            )
        elif not _OPS[op](value, bound):
            failures.append(f"{label}: {field} = {value} !{op} {shown}")
    return failures


def check_file(path: Path) -> list[str]:
    """Failure messages for one trajectory file (empty = pass)."""
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"cannot load {path}: {exc}"]
    bench = doc.get("bench")
    checks = CHECKS.get(bench)
    if checks is None:
        return [
            f"{path}: unknown bench {bench!r} "
            f"(known: {', '.join(sorted(CHECKS))})"
        ]
    entries = doc.get("entries")
    if not entries:
        return [f"{path}: no trajectory entries"]
    failures = []
    for entry in entries:
        failures.extend(f"{path}: {msg}"
                        for msg in check_entry(entry, checks))
    if not failures:
        print(f"{path}: trajectory ok ({len(entries)} entries, "
              f"{len(checks)} checks each)")
    return failures


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        print("usage: check_trajectory.py BENCH_X.json [...]", file=sys.stderr)
        return 2
    failures = []
    for arg in argv:
        failures.extend(check_file(Path(arg)))
    for message in failures:
        print(f"FAIL {message}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
