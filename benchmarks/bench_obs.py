"""Experiment O1 — tracing overhead and phase wall-clock coverage.

The ``repro.obs`` tracer attributes every superstep's wall-clock to
per-phase JSONL events, and every run additionally computes the
communication ledger (per-phase bits/rounds vs the declared Õ envelope)
on its recorded metrics.  Observability that distorts the thing it
observes is worthless, so this bench measures the tax directly: the same
registry run on the cached 1e6-node R-MAT, untraced vs traced to a JSONL
file, min-over-repetitions on both sides (min is the noise-robust
statistic for a deterministic workload).  The ledger rides along on
*both* sides — the ratio is the marginal cost of tracing on top of the
always-on accounting, and the report records the traced run's ledger
verdict (``ledger_ok``) so the trajectory also witnesses the workload
staying inside its envelope at full scale.

Two acceptance bars, recorded in the repo-committed ``BENCH_obs.json``
trajectory:

* **overhead**: traced / untraced wall-clock ratio < **1.05** (the
  tracer must cost under 5%);
* **coverage**: the traced run's per-phase wall-clock segments sum to
  within **10%** of the post-setup run window, i.e. the trace accounts
  for where the time actually went.

Both are asserted only when the untraced run is long enough for the
ratio to be signal rather than timer noise (smoke sizes skip them).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _common import emit, engine_choice, run_algorithm, workers_choice  # noqa: E402

DATASET = "rmat:n=1000000,avg_deg=16,seed=7"
#: PageRank: its wall-clock lives in the superstep stream itself
#: (hundreds of token exchange/kernel phases per run), so it is both
#: the regime where per-phase tracing would hurt if it were going to
#: *and* a workload the coverage bar is meaningful for.  Accounting-only
#: drivers (MST/connectivity) legitimately spend part of their wall in
#: model-free local post-processing outside the superstep stream, which
#: the trace correctly reports as uncovered.
ALGO = "pagerank"
K = 8
SEED = 11
REPS = 2
#: The acceptance bar: traced wall-clock over untraced wall-clock.
OVERHEAD_CEILING = 1.05
#: Phase wall-clock must account for >= 90% of the post-setup window.
COVERAGE_FLOOR = 0.90
#: Below this untraced time the ratio is timer noise, not signal.
MIN_STABLE_SECONDS = 1.0


def run_obs_bench(
    dataset: str = DATASET,
    algo: str = ALGO,
    k: int = K,
    reps: int = REPS,
) -> dict:
    """Time untraced vs traced runs of one workload; returns the report."""
    from repro import workloads
    from repro.obs import read_trace, summarize_trace

    graph = workloads.materialize(dataset)  # cached: load or build+store
    engine = engine_choice()
    workers = workers_choice() if engine == "process" else None

    def one_run(trace):
        start = time.perf_counter()
        rep = run_algorithm(
            algo, graph, k, seed=SEED, engine=engine, workers=workers,
            trace=trace,
        )
        return time.perf_counter() - start, rep

    # Warm both paths once (shard construction, imports) before timing.
    one_run(False)

    untraced: list[float] = []
    traced: list[float] = []
    summary = None
    trace_bytes = 0
    rounds = None
    ledger_ok = None
    with tempfile.TemporaryDirectory() as tmp:
        for i in range(reps):
            # Alternate orders so drift (thermal, cache) hits both sides.
            seconds, rep = one_run(False)
            untraced.append(seconds)
            rounds = rep.rounds
            path = os.path.join(tmp, f"trace-{i}.jsonl")
            seconds, rep = one_run(path)
            traced.append(seconds)
            assert rep.rounds == rounds, "tracing changed the execution"
            if rep.ledger_report is not None:
                ledger_ok = rep.ledger_report.ok
        events = read_trace(path)
        trace_bytes = os.path.getsize(path)
        summary = summarize_trace(events)

    best_untraced = min(untraced)
    best_traced = min(traced)
    return {
        "dataset": dataset,
        "algo": algo,
        "n": graph.n,
        "m": graph.m,
        "k": k,
        "engine": engine,
        "reps": reps,
        "rounds": rounds,
        "untraced_seconds": round(best_untraced, 4),
        "traced_seconds": round(best_traced, 4),
        "overhead_ratio": round(best_traced / best_untraced, 4),
        "phase_events": sum(g["count"] for g in summary["groups"]),
        "phase_wall_s": round(summary["phase_wall_s"], 4),
        "run_wall_s": round(summary["run_wall_s"], 4),
        "setup_s": round(summary["setup_s"], 4),
        "coverage": round(summary["coverage"], 4),
        "trace_bytes": trace_bytes,
        "ledger_ok": ledger_ok,
    }


def check_acceptance(report: dict) -> None:
    """Assert the <5% overhead and >=90% coverage bars on stable runs."""
    # Ledger correctness is scale-independent: the measured run must sit
    # inside its declared Õ envelope at every size, smoke included.
    assert report["ledger_ok"] is not False, (
        f"{report['algo']} exceeded its communication budget"
    )
    if report["untraced_seconds"] < MIN_STABLE_SECONDS:
        return
    assert report["overhead_ratio"] < OVERHEAD_CEILING, (
        f"tracing overhead {report['overhead_ratio']}x exceeds the "
        f"{OVERHEAD_CEILING}x ceiling "
        f"(untraced {report['untraced_seconds']}s, "
        f"traced {report['traced_seconds']}s)"
    )
    assert report["coverage"] >= COVERAGE_FLOOR, (
        f"phase events cover only {report['coverage']:.1%} of the "
        f"post-setup window (floor {COVERAGE_FLOOR:.0%})"
    )


def _render_report(r: dict) -> str:
    return "\n".join([
        f"O1 tracing overhead on {r['dataset']} "
        f"(n={r['n']}, m={r['m']}, k={r['k']}, {r['algo']}/{r['engine']}):",
        "",
        f"  untraced (min of {r['reps']}):  {r['untraced_seconds']:9.3f}s",
        f"  traced   (min of {r['reps']}):  {r['traced_seconds']:9.3f}s",
        f"  overhead ratio:          {r['overhead_ratio']:9.4f}x "
        f"(ceiling {OVERHEAD_CEILING}x)",
        "",
        f"  phase events: {r['phase_events']} "
        f"({r['trace_bytes']} bytes of JSONL)",
        f"  phase wall accounted: {r['phase_wall_s']:.3f}s of "
        f"{r['run_wall_s']:.3f}s run ({r['setup_s']:.3f}s setup)",
        f"  post-setup coverage: {r['coverage']:.1%} "
        f"(floor {COVERAGE_FLOOR:.0%})",
        f"  communication ledger: "
        f"{'within budget' if r['ledger_ok'] else r['ledger_ok']}",
    ])


def bench_tracing_overhead(benchmark):
    report = benchmark.pedantic(run_obs_bench, rounds=1, iterations=1)
    emit("O1_obs", _render_report(report))
    benchmark.extra_info.update({
        "overhead_ratio": report["overhead_ratio"],
        "coverage": report["coverage"],
    })
    check_acceptance(report)


def build_report(dataset: str, reps: int) -> dict:
    """The JSON document the CI ``obs`` job uploads."""
    return {
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "obs": run_obs_bench(dataset, reps=reps),
    }


def update_trajectory(path: Path, report: dict, label: str) -> None:
    """Append (or replace) this run's entry in the committed trajectory."""
    doc = {"bench": "obs", "unit": "traced/untraced wall ratio",
           "entries": []}
    if path.exists():
        doc = json.loads(path.read_text())
    entry = {
        "label": label,
        "host_cpus": report["host"]["cpu_count"],
        **{key: report["obs"][key] for key in (
            "dataset", "algo", "k", "engine",
            "untraced_seconds", "traced_seconds", "overhead_ratio",
            "coverage", "phase_events", "ledger_ok",
        )},
    }
    doc["entries"] = [e for e in doc["entries"] if e["label"] != label]
    doc["entries"].append(entry)
    path.write_text(json.dumps(doc, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="bench-obs.json")
    parser.add_argument("--dataset", default=DATASET)
    parser.add_argument("--reps", type=int, default=REPS)
    parser.add_argument("--trajectory", default=None,
                        help="also record this run in the committed "
                             "BENCH_obs.json trajectory file")
    parser.add_argument("--label", default="PR8",
                        help="trajectory entry label (default: PR8)")
    args = parser.parse_args(argv)
    report = build_report(args.dataset, args.reps)
    check_acceptance(report["obs"])
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if args.trajectory:
        update_trajectory(Path(args.trajectory), report, args.label)
    return 0


def smoke():
    """Smallest configuration: a toy dataset, one repetition."""
    from repro.workloads import DATA_DIR_ENV

    with tempfile.TemporaryDirectory() as tmp:
        old = os.environ.get(DATA_DIR_ENV)
        os.environ[DATA_DIR_ENV] = tmp
        try:
            report = run_obs_bench(
                dataset="gnp:n=300,avg_deg=4,seed=1", reps=1
            )
            check_acceptance(report)  # timing bars guarded: smoke is noise
            assert report["phase_events"] > 0
            assert report["overhead_ratio"] > 0
            assert report["ledger_ok"] is True
        finally:
            if old is None:
                os.environ.pop(DATA_DIR_ENV, None)
            else:
                os.environ[DATA_DIR_ENV] = old


if __name__ == "__main__":
    raise SystemExit(main())
