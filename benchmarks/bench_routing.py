"""Experiment L13 — Lemma 13: random routing in ``O((x log x)/k)`` rounds.

Synthetic workloads: every machine sends ``x`` messages to i.u.r.
destinations; the bench sweeps ``x`` and ``k`` and prints measured rounds
of the direct schedule against the Lemma-13 envelope, plus the
adversarial single-sink workload where Valiant two-hop routing (the
randomized-proxy primitive) beats direct routing.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np

from repro.experiments.harness import Sweep
from repro.kmachine.message import Message
from repro.kmachine.network import LinkNetwork
from repro.kmachine.routing import direct_exchange, lemma13_round_bound, valiant_exchange

from _common import emit

BITS = 16
B = 32


def random_workload(k, x, rng):
    out = [[] for _ in range(k)]
    dests = rng.integers(0, k, size=(k, x))
    for i in range(k):
        out[i] = [Message(src=i, dst=int(j), kind="w", bits=BITS) for j in dests[i]]
    return out


def run_random_sweep():
    rng = np.random.default_rng(0)
    sweep = Sweep("L13: direct routing of x random-destination messages/machine")
    for k in (8, 16, 32):
        for x in (200, 800, 3200):
            net = LinkNetwork(k, bandwidth=B)
            direct_exchange(net, random_workload(k, x, rng))
            envelope = lemma13_round_bound(x, k, BITS, B)
            sweep.add(
                {"k": k, "x": x},
                {
                    "measured_rounds": net.rounds,
                    "lemma13_envelope": round(envelope, 1),
                    "ratio": net.rounds / envelope,
                },
            )
    return sweep


def run_adversarial():
    rng = np.random.default_rng(1)
    sweep = Sweep("L13 adversarial: all messages to one sink (proxy routing wins)")
    k, x = 16, 2000
    out = [[] for _ in range(k)]
    out[1] = [Message(src=1, dst=0, kind="w", bits=BITS) for _ in range(x)]
    net_direct = LinkNetwork(k, bandwidth=B)
    direct_exchange(net_direct, [list(b) for b in out])
    net_valiant = LinkNetwork(k, bandwidth=B)
    valiant_exchange(net_valiant, out, rng=rng)
    sweep.add(
        {"k": k, "x": x},
        {"direct_rounds": net_direct.rounds, "valiant_rounds": net_valiant.rounds},
    )
    return sweep


def bench_l13_random_routing(benchmark):
    rand, adv = benchmark.pedantic(
        lambda: (run_random_sweep(), run_adversarial()), rounds=1, iterations=1
    )
    emit("L13_routing", rand.render() + "\n\n" + adv.render())
    for row in rand.rows:
        # Within a small constant of the Lemma-13 envelope (the bench
        # accepts 4x slack for the whp deviations at small loads).
        assert row.values["measured_rounds"] <= 4 * max(1.0, row.values["lemma13_envelope"])
    row = adv.rows[0]
    assert row.values["valiant_rounds"] < row.values["direct_rounds"]

def smoke():
    """Smallest configuration: direct and Valiant routing on a tiny load."""
    rng = np.random.default_rng(0)
    net = LinkNetwork(4, bandwidth=B)
    direct_exchange(net, random_workload(4, 20, rng))
    assert net.rounds > 0
    net2 = LinkNetwork(4, bandwidth=B)
    out = [[] for _ in range(4)]
    out[1] = [Message(src=1, dst=0, kind="w", bits=BITS) for _ in range(40)]
    valiant_exchange(net2, out, rng=rng)
    assert net2.rounds > 0
