"""Experiment C1 — Corollary 1: ``Θ̃(n^{1/3})`` triangles in the congested clique.

The congested clique is the ``k = n`` extreme of the model.  The bench
sweeps ``n`` (cubes, so ``q = n^{1/3}`` is exact), runs the TriPartition-
style algorithm with one vertex per machine on ``G(n, 1/2)``, and prints
measured rounds against both the Corollary-1 lower envelope
``Ω(n^{1/3}/B)`` and an ``n^{1/3}`` fit — the paper's claim is that the
two sides match up to logarithmic factors.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import repro
from repro.core.lowerbounds.triangles import congested_clique_lower_bound
from repro.experiments.fits import fit_power_law
from repro.experiments.harness import Sweep

from _common import emit, log2ceil

NS = (64, 125, 216, 343)


def run_sweep():
    sweep = Sweep("C1: congested-clique triangle enumeration, G(n, 1/2)")
    for n in NS:
        g = repro.gnp_random_graph(n, 0.5, seed=n)
        B = log2ceil(n)
        res = repro.enumerate_triangles_congested_clique(g, seed=1, bandwidth=B)
        envelope = congested_clique_lower_bound(n, B)
        sweep.add(
            {"n": n},
            {
                "measured_rounds": res.rounds,
                "lb_envelope_rounds": envelope,
                "ratio": res.rounds / envelope,
                "n_cuberoot": round(n ** (1 / 3), 2),
                "triangles": res.count,
            },
        )
    return sweep


def bench_c1_congested_clique(benchmark):
    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    ns = sweep.column("n")
    fit = fit_power_law(ns, sweep.column("measured_rounds"))
    text = sweep.render() + (
        f"\n\nfit: rounds ~ n^{fit.exponent:.2f}"
        f"  (paper: Θ̃(n^(1/3)) = n^0.33; r2={fit.r_squared:.3f})"
    )
    emit("C1_congested_clique", text)
    benchmark.extra_info["exponent"] = fit.exponent

    for row in sweep.rows:
        assert row.values["measured_rounds"] >= row.values["lb_envelope_rounds"]
    # Rounds grow far slower than the m = Θ(n²) data volume: sublinear in n.
    assert fit.exponent < 0.9

def smoke():
    """Smallest configuration: one tiny congested-clique run."""
    g = repro.gnp_random_graph(27, 0.5, seed=1)
    res = repro.enumerate_triangles_congested_clique(g, seed=1, bandwidth=log2ceil(27))
    assert res.rounds >= 0
