"""Experiment X3 — §1.3: direct algorithms vs the Conversion Theorem.

The paper stresses that all previous k-machine upper bounds came from
converting CONGEST algorithms (Conversion Theorem of Klauck et al.) and
that its own improvements come from *direct* k-machine algorithms.  The
bench makes that concrete: the Das Sarma et al. CONGEST PageRank is
recorded and replayed through the Conversion Theorem, and compared with
Algorithm 1 run directly — on a star (the §3.1 congestion story) and on
a sparse random graph — across k.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import repro
from repro.congest import congest_pagerank, convert_execution
from repro.experiments.harness import Sweep
from repro.kmachine.partition import random_vertex_partition

from _common import emit, log2ceil, run_algorithm

N_STAR = 4000
N_GNP = 3000
KS = (16, 32, 64)


def run_star():
    g = repro.star_graph(N_STAR)
    B = 16
    sweep = Sweep(f"X3: conversion vs direct on star n={N_STAR}, B={B}")
    _, execution = congest_pagerank(g, seed=0, c=1, bandwidth=B)
    for k in KS:
        p = random_vertex_partition(g.n, k, seed=k)
        converted = convert_execution(execution, p, k=k, bandwidth=B)
        direct = run_algorithm(
            "pagerank", g, k, seed=0, c=1, bandwidth=B, placement=p
        ).result
        sweep.add(
            {"k": k},
            {
                "converted_rounds": converted.rounds,
                "direct_rounds": direct.token_rounds(),
                "speedup": round(converted.rounds / max(1, direct.token_rounds()), 1),
            },
        )
    return sweep


def run_gnp():
    g = repro.gnp_random_graph(N_GNP, 6.0 / N_GNP, seed=1)
    B = log2ceil(N_GNP)
    sweep = Sweep(f"X3: conversion vs direct on G({N_GNP}, 6/n), B={B}")
    _, execution = congest_pagerank(g, seed=2, c=1, bandwidth=B)
    for k in KS:
        p = random_vertex_partition(g.n, k, seed=100 + k)
        converted = convert_execution(execution, p, k=k, bandwidth=B)
        direct = run_algorithm(
            "pagerank", g, k, seed=2, c=1, bandwidth=B, placement=p
        ).result
        sweep.add(
            {"k": k},
            {
                "converted_rounds": converted.rounds,
                "direct_rounds": direct.token_rounds(),
                "speedup": round(converted.rounds / max(1, direct.token_rounds()), 1),
            },
        )
    return sweep


def bench_x3_conversion_theorem(benchmark):
    star, gnp = benchmark.pedantic(lambda: (run_star(), run_gnp()), rounds=1, iterations=1)
    emit("X3_conversion_theorem", star.render() + "\n\n" + gnp.render())
    # The direct algorithm must win on the star at every k (conversion is
    # Θ(n/k) per round there; direct pays Õ(1) thanks to cross-source
    # aggregation and the heavy path).
    for row in star.rows:
        assert row.values["speedup"] > 2
    # On sparse bounded-degree graphs the two move similar volume (the
    # paper's gains are about congestion, not volume): direct never loses.
    for row in gnp.rows:
        assert row.values["direct_rounds"] <= 1.5 * row.values["converted_rounds"]

def smoke():
    """Smallest configuration: conversion vs direct on a tiny star."""
    g = repro.star_graph(40)
    _, execution = congest_pagerank(g, seed=0, c=1, bandwidth=8)
    p = random_vertex_partition(g.n, 4, seed=4)
    converted = convert_execution(execution, p, k=4, bandwidth=8)
    direct = run_algorithm(
        "pagerank", g, 4, seed=0, c=1, bandwidth=8, placement=p
    ).result
    assert converted.rounds > 0 and direct.rounds > 0
