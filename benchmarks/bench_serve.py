"""Experiment S1 — the persistent analytics service under load.

The serve daemon's reason to exist is amortization: the graph snapshot,
the materialized :class:`DistributedGraph` shards, and the sqlite result
cache all outlive any single request, so a long-lived service answers
sustained traffic at rates a cold process cannot touch.  This bench
measures that claim as three request regimes against one live daemon on
a cached 1e6-node R-MAT at ``k = 8``:

* **cold single-shot** — the daemon's first-ever request: snapshot load
  from the on-disk graph cache, shard materialization, full superstep
  execution, result-store write;
* **warm executing** — same dataset resident, fresh seeds, so every
  request still executes supersteps (serialized over the session's
  substrate lock) but skips the load/materialize tax;
* **warm concurrent (result-cache hits)** — many clients repeating an
  identical request; the session answers from sqlite without touching
  the substrate, which is where the requests/sec headroom lives.

The acceptance bar asserted here (and recorded in the repo-committed
``BENCH_serve.json`` trajectory): warm concurrent requests/sec at least
**5x** the cold single-shot rate.  ``main()`` emits the measurements as
the CI ``serve`` job's JSON artifact and can refresh the trajectory
snapshot with ``--trajectory``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _common import emit  # noqa: E402

DATASET = "rmat:n=1000000,avg_deg=16,seed=7"
#: Connectivity: heavy enough that the cold/warm/hit separation is real
#: (tens of seconds of supersteps at n=1e6) yet feasible on small hosts;
#: the regimes compare identically for any family.
ALGO = "connectivity"
K = 8
SEED = 11
ENGINE = "vector"
#: Per-request client timeout — a cold 1e6-node run on a small host is
#: minutes, not the default interactive 600 s.
CLIENT_TIMEOUT_SECONDS = 3600.0
WARM_REQUESTS = 3
HIT_THREADS = 8
HIT_REQUESTS_PER_THREAD = 8
#: The acceptance bar: warm concurrent rps vs the cold single-shot rate.
HIT_SPEEDUP_FLOOR = 5.0
#: Below this cold time the ratio is noise, not signal (smoke sizes).
MIN_STABLE_COLD_SECONDS = 0.2


def run_serve_bench(
    dataset: str = DATASET,
    algo: str = ALGO,
    k: int = K,
    warm_requests: int = WARM_REQUESTS,
    hit_threads: int = HIT_THREADS,
    hit_requests_per_thread: int = HIT_REQUESTS_PER_THREAD,
) -> dict:
    """Drive one daemon through the three regimes; returns the report."""
    from repro import workloads
    from repro.serve import ReproServer, ServeClient

    prep_start = time.perf_counter()
    graph = workloads.materialize(dataset)  # cached: load or build+store
    prep_seconds = time.perf_counter() - prep_start

    with tempfile.TemporaryDirectory() as tmp:
        server = ReproServer(
            port=0,
            result_cache=os.path.join(tmp, "results.sqlite"),
            queue_limit=max(16, 2 * hit_threads),
        )
        with server.start_in_thread() as handle:
            client = ServeClient(handle.host, handle.port,
                                 timeout=CLIENT_TIMEOUT_SECONDS)
            client.wait_until_ready()

            # Regime 1: cold single shot (load + materialize + execute).
            start = time.perf_counter()
            cold_report = client.run(
                algo, dataset=dataset, k=k, seed=SEED, engine=ENGINE
            )
            cold_seconds = time.perf_counter() - start
            assert cold_report["cached"] is False

            # Regime 2: warm but executing (fresh seeds, resident data).
            start = time.perf_counter()
            for i in range(warm_requests):
                rep = client.run(
                    algo, dataset=dataset, k=k, seed=SEED + 1 + i, engine=ENGINE
                )
                assert rep["cached"] is False
            warm_seconds = time.perf_counter() - start

            # Regime 3: warm concurrent, identical request -> sqlite hits.
            errors: list[Exception] = []
            barrier = threading.Barrier(hit_threads)

            def hammer():
                try:
                    own = ServeClient(handle.host, handle.port,
                                      timeout=CLIENT_TIMEOUT_SECONDS)
                    barrier.wait()
                    for _ in range(hit_requests_per_thread):
                        rep = own.run(
                            algo, dataset=dataset, k=k, seed=SEED, engine=ENGINE
                        )
                        assert rep["cached"] is True
                except Exception as exc:  # noqa: BLE001 - reported below
                    errors.append(exc)

            threads = [threading.Thread(target=hammer) for _ in range(hit_threads)]
            start = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            hit_seconds = time.perf_counter() - start
            assert not errors, f"concurrent clients failed: {errors[:3]}"

            status = client.status()

    hit_total = hit_threads * hit_requests_per_thread
    cold_rps = 1.0 / cold_seconds
    warm_rps = warm_requests / warm_seconds
    hit_rps = hit_total / hit_seconds
    session = status["session"]
    assert session["executed"] == 1 + warm_requests
    assert session["cache_hits"] == hit_total
    assert session["result_store"]["hits"] == hit_total
    return {
        "dataset": dataset,
        "algo": algo,
        "n": graph.n,
        "m": graph.m,
        "k": k,
        "engine": ENGINE,
        "prep_seconds": round(prep_seconds, 3),
        "cold_single_shot_seconds": round(cold_seconds, 3),
        "cold_single_shot_rps": round(cold_rps, 3),
        "warm_exec_requests": warm_requests,
        "warm_exec_rps": round(warm_rps, 3),
        "hit_clients": hit_threads,
        "hit_requests": hit_total,
        "warm_concurrent_hit_rps": round(hit_rps, 1),
        "hit_speedup_vs_cold": round(hit_rps / cold_rps, 1),
        "rounds": cold_report["rounds"],
        "messages": cold_report["messages"],
    }


def check_acceptance(report: dict) -> None:
    """Assert the 5x bar whenever the cold time is a stable signal."""
    if report["cold_single_shot_seconds"] >= MIN_STABLE_COLD_SECONDS:
        assert (
            report["hit_speedup_vs_cold"] >= HIT_SPEEDUP_FLOOR
        ), (
            f"warm concurrent rps ({report['warm_concurrent_hit_rps']}) must "
            f"be >= {HIT_SPEEDUP_FLOOR}x the cold single-shot rate "
            f"({report['cold_single_shot_rps']})"
        )


def _render_report(r: dict) -> str:
    return "\n".join([
        f"S1 serve throughput on {r['dataset']} "
        f"(n={r['n']}, m={r['m']}, k={r['k']}, {r['algo']}/{r['engine']}):",
        "",
        f"  dataset prep (cached materialize):  {r['prep_seconds']:9.3f}s",
        f"  cold single shot:                   {r['cold_single_shot_seconds']:9.3f}s"
        f"  = {r['cold_single_shot_rps']:10.3f} req/s",
        f"  warm executing ({r['warm_exec_requests']} fresh seeds):"
        f"      {r['warm_exec_rps']:10.3f} req/s",
        f"  warm concurrent ({r['hit_clients']} clients x "
        f"{r['hit_requests'] // r['hit_clients']} hits):"
        f"  {r['warm_concurrent_hit_rps']:10.1f} req/s",
        "",
        f"  hit speedup vs cold: {r['hit_speedup_vs_cold']}x "
        f"(floor {HIT_SPEEDUP_FLOOR}x)",
    ])


def bench_serve_throughput(benchmark):
    report = benchmark.pedantic(run_serve_bench, rounds=1, iterations=1)
    emit("S1_serve", _render_report(report))
    benchmark.extra_info.update({
        "cold_single_shot_rps": report["cold_single_shot_rps"],
        "warm_concurrent_hit_rps": report["warm_concurrent_hit_rps"],
        "hit_speedup_vs_cold": report["hit_speedup_vs_cold"],
    })
    check_acceptance(report)


def build_report(dataset: str, warm_requests: int, hit_threads: int,
                 hit_requests_per_thread: int) -> dict:
    """The JSON document the CI ``serve`` job uploads."""
    return {
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "serve": run_serve_bench(
            dataset,
            warm_requests=warm_requests,
            hit_threads=hit_threads,
            hit_requests_per_thread=hit_requests_per_thread,
        ),
    }


def update_trajectory(path: Path, report: dict, label: str) -> None:
    """Append (or replace) this run's entry in the committed trajectory."""
    doc = {"bench": "serve", "unit": "requests/sec", "entries": []}
    if path.exists():
        doc = json.loads(path.read_text())
    entry = {
        "label": label,
        "host_cpus": report["host"]["cpu_count"],
        **{key: report["serve"][key] for key in (
            "dataset", "algo", "k", "engine",
            "cold_single_shot_rps", "warm_exec_rps",
            "warm_concurrent_hit_rps", "hit_speedup_vs_cold",
        )},
    }
    doc["entries"] = [e for e in doc["entries"] if e["label"] != label]
    doc["entries"].append(entry)
    path.write_text(json.dumps(doc, indent=2) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="bench-serve.json")
    parser.add_argument("--dataset", default=DATASET)
    parser.add_argument("--warm-requests", type=int, default=WARM_REQUESTS)
    parser.add_argument("--hit-threads", type=int, default=HIT_THREADS)
    parser.add_argument("--hit-requests-per-thread", type=int,
                        default=HIT_REQUESTS_PER_THREAD)
    parser.add_argument("--trajectory", default=None,
                        help="also record this run in the committed "
                             "BENCH_serve.json trajectory file")
    parser.add_argument("--label", default="PR6",
                        help="trajectory entry label (default: PR6)")
    args = parser.parse_args(argv)
    report = build_report(
        args.dataset, args.warm_requests, args.hit_threads,
        args.hit_requests_per_thread,
    )
    check_acceptance(report["serve"])
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    if args.trajectory:
        update_trajectory(Path(args.trajectory), report, args.label)
    return 0


def smoke():
    """Smallest configuration: a toy dataset through all three regimes."""
    from repro.workloads import DATA_DIR_ENV

    with tempfile.TemporaryDirectory() as tmp:
        old = os.environ.get(DATA_DIR_ENV)
        os.environ[DATA_DIR_ENV] = tmp
        try:
            report = run_serve_bench(
                dataset="gnp:n=300,avg_deg=4,seed=1",
                warm_requests=1,
                hit_threads=2,
                hit_requests_per_thread=2,
            )
            check_acceptance(report)  # guarded: smoke cold times are noise
            assert report["hit_requests"] == 4
        finally:
            if old is None:
                os.environ.pop(DATA_DIR_ENV, None)
            else:
                os.environ[DATA_DIR_ENV] = old


if __name__ == "__main__":
    raise SystemExit(main())
