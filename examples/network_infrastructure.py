"""Infrastructure planning: distributed MST + connectivity on a weighted network.

The §1.3 extensions in one scenario: a "datacenter interconnect" graph
with link costs is processed by the k-machine cluster to (a) check
connectivity, (b) compute the minimum-cost spanning backbone, and (c)
compare the measured round cost with the §1.3 ``Ω̃(n/k²)`` lower bound —
the first non-graph-output application the paper suggests for the
General Lower Bound Theorem after sorting.

Run:  python examples/network_infrastructure.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.core.connectivity import connected_components_distributed
from repro.core.lowerbounds.extensions import mst_round_lower_bound
from repro.core.mst import distributed_mst, kruskal_mst
from repro.experiments.tables import format_table


def main(n: int = 500, k: int = 16) -> None:
    # A clustered topology: dense "racks" plus sparse cross-links.
    rng = np.random.default_rng(11)
    racks = 10
    per = n // racks
    edges = []
    for r in range(racks):
        base = r * per
        for i in range(per):
            for j in range(i + 1, per):
                if rng.random() < 0.25:
                    edges.append((base + i, base + j))
    for r in range(racks - 1):
        for _ in range(3):
            a = r * per + int(rng.integers(per))
            b = (r + 1) * per + int(rng.integers(per))
            edges.append((min(a, b), max(a, b)))
    edges = sorted(set(edges))
    g = repro.Graph(n=n, edges=np.array(edges, dtype=np.int64))
    weights = rng.random(g.m) * 10.0
    print(f"interconnect: n={g.n} nodes, m={g.m} candidate links, k={k} machines")

    conn = connected_components_distributed(g, k=k, seed=1)
    print(
        f"\nconnectivity: {conn.num_components} component(s) in {conn.rounds} rounds"
        f" — {'fully connected' if conn.is_connected() else 'PARTITIONED'}"
    )

    res = distributed_mst(g, weights, k=k, seed=2)
    _, ref_total = kruskal_mst(g, weights)
    print("\nminimum-cost backbone (distributed Borůvka + proxies):")
    rows = [
        ["backbone links", res.edges.shape[0]],
        ["total cost", f"{res.total_weight:.3f} (Kruskal: {ref_total:.3f})"],
        ["Borůvka phases", res.phases],
        ["rounds", res.rounds],
        ["messages", res.metrics.messages],
    ]
    print(format_table(["metric", "value"], rows))

    B = res.metrics.bandwidth
    lb = mst_round_lower_bound(n, k, B)
    print(
        f"\n§1.3 MST lower bound at B={B}: {lb:.2f} rounds"
        f" (measured/bound = {res.rounds / lb:.0f}x — the polylog gap)"
    )

    # Which cross-rack links made the backbone?
    cross = [
        (int(u), int(v))
        for u, v in res.edges
        if u // per != v // per
    ]
    print(f"cross-rack backbone links: {len(cross)} (need >= {racks - 1} for connectivity)")


if __name__ == "__main__":
    main()
