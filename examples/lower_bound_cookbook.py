"""The General Lower Bound Theorem as a cookbook (paper §2.1).

The paper advertises Theorem 1 as usable "in a cookbook fashion": pick a
random variable Z, bound every machine's initial knowledge (Premise 1),
show some machine's output pins down IC bits (Premise 2), conclude
``T = Ω(IC/Bk)``.  This example walks through all four instantiations the
paper discusses — PageRank, triangle enumeration, sorting, MST — for a
user-chosen (n, k, B), then *verifies the premises empirically* on a
sampled Figure-1 instance.

Run:  python examples/lower_bound_cookbook.py [n] [k]
"""

from __future__ import annotations

import sys

import repro
from repro.core.lowerbounds import (
    pagerank_information_cost,
    mst_round_lower_bound,
    sorting_round_lower_bound,
)
from repro.core.lowerbounds.pagerank import verify_lower_bound_premises
from repro.core.lowerbounds.triangles import triangle_information_cost
from repro.core.lowerbounds.extensions import sorting_information_cost, mst_information_cost
from repro.experiments.tables import format_table
from repro.kmachine.partition import random_vertex_partition
from repro._util import polylog


def main(n: int = 100_000, k: int = 32) -> None:
    B = polylog(n, factor=1)
    print(f"General Lower Bound Theorem cookbook: n={n}, k={k}, B={B} bits/round\n")

    rows = [
        [
            "PageRank (Thm 2)",
            "edge-direction bits (b_i, v_i)",
            f"{pagerank_information_cost(n, k):.0f}",
            f"{repro.pagerank_round_lower_bound(n, k, B):.4g}",
        ],
        [
            "Triangles (Thm 3)",
            "characteristic edge vector",
            f"{triangle_information_cost(n, k):.0f}",
            f"{repro.triangle_round_lower_bound(n, k, B):.4g}",
        ],
        [
            "Sorting (§1.3)",
            "ranks of the output block",
            f"{sorting_information_cost(n, k):.0f}",
            f"{sorting_round_lower_bound(n, k, B):.4g}",
        ],
        [
            "MST (§1.3)",
            "identities of output MST edges",
            f"{mst_information_cost(n, k):.0f}",
            f"{mst_round_lower_bound(n, k, B):.4g}",
        ],
    ]
    print(format_table(["problem", "random variable Z", "IC (bits)", "T >= IC/Bk (rounds)"], rows))

    # ------------------------------------------------------------------
    # Empirical premise verification on the Figure-1 graph.
    q = max(2, (n - 1) // 4)
    inst = repro.pagerank_lowerbound_graph(q=q, seed=0)
    partition = random_vertex_partition(inst.n, k, seed=1)
    report = verify_lower_bound_premises(inst, partition, bandwidth=B)
    print("\nPremise check on a sampled Figure-1 instance (PageRank):")
    print(f"  chains q = {report.q}; Z carries one fair bit per chain")
    print(
        f"  Premise 1 / Lemma 5: max chains known initially by any machine ="
        f" {report.max_paths_known}  (whp bound {report.lemma5_bound:.0f})"
        f"  -> holds: {report.premise1_holds}"
    )
    print(
        f"  Premise 2 / Lemmas 6+8: some machine outputs >= q/k = {report.q // k}"
        f" PageRank values, each revealing one (b_i, v_i) pair"
    )
    print(f"  conclusion: T = Ω(IC/Bk) = {report.round_lower_bound:.4g} rounds")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
