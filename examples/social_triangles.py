"""Social-network analysis: triangles, clustering, and friend suggestions.

The paper lists social-process analysis, community detection, and friend
recommendation (open triads) among the applications of triangle
enumeration (§1.5).  This example builds a "social network" with planted
friend groups plus random acquaintances, then uses the distributed
Theorem-5 algorithm to:

* enumerate all triangles (closed friend circles),
* compute per-user clustering coefficients from the enumeration,
* enumerate open triads and rank friend-of-a-friend suggestions.

Run:  python examples/social_triangles.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.experiments.tables import format_table


def main(n: int = 400, k: int = 27) -> None:
    g = repro.planted_triangles_graph(n, num_triangles=n // 6, seed=3, noise_p=4.0 / n)
    print(f"social network: n={g.n} users, m={g.m} friendships, k={k} machines")

    result = repro.enumerate_triangles_distributed(
        g, k=k, seed=5, enumerate_triads=True
    )
    result.assert_no_duplicates()
    assert result.count == repro.count_triangles(g)
    print(
        f"\nenumerated {result.count} triangles and {result.open_triads.shape[0]} open"
        f" triads in {result.rounds} rounds"
        f" ({result.metrics.messages} messages, q={result.num_colors} colors)"
    )

    # Per-user clustering coefficient from the triangle list.
    tri_per_vertex = np.zeros(g.n, dtype=np.int64)
    if result.count:
        np.add.at(tri_per_vertex, result.triangles.ravel(), 1)
    deg = g.degrees()
    wedges = deg * (deg - 1) / 2
    with np.errstate(divide="ignore", invalid="ignore"):
        clustering = np.where(wedges > 0, tri_per_vertex / wedges, 0.0)

    print("\nmost clustered users:")
    top = np.argsort(clustering)[::-1][:5]
    print(
        format_table(
            ["user", "degree", "triangles", "clustering"],
            [[f"u{v}", int(deg[v]), int(tri_per_vertex[v]), f"{clustering[v]:.3f}"] for v in top],
        )
    )

    # Friend suggestions: open triads (a - center - b with a, b strangers),
    # ranked by how many shared friends the pair has.
    pair_counts: dict[tuple[int, int], int] = {}
    for center, a, b in result.open_triads:
        key = (min(int(a), int(b)), max(int(a), int(b)))
        pair_counts[key] = pair_counts.get(key, 0) + 1
    suggestions = sorted(pair_counts.items(), key=lambda kv: -kv[1])[:5]
    print("\ntop friend suggestions (shared-friend count):")
    print(
        format_table(
            ["pair", "shared friends"],
            [[f"u{a} - u{b}", c] for (a, b), c in suggestions],
        )
    )

    # Global clustering coefficient sanity.
    total_wedges = wedges.sum()
    global_cc = 3 * result.count / total_wedges if total_wedges else 0.0
    print(f"\nglobal clustering coefficient: {global_cc:.4f}")


if __name__ == "__main__":
    main()
