"""Web-scale ranking scenario: PageRank on a heavy-tailed graph.

The paper's introduction motivates the k-machine model with web/social
graphs whose degree distributions are heavy-tailed — exactly the inputs
where naive token forwarding congests the machines hosting hub pages.
This example builds a Chung-Lu power-law graph ("the web"), ranks pages
with Algorithm 1, and contrasts its communication profile with the prior
Õ(n/k) baseline, including the heavy-vertex ablation.

Run:  python examples/web_ranking.py [n] [k]
"""

from __future__ import annotations

import sys

import numpy as np

import repro
from repro.experiments.tables import format_table


def main(n: int = 2000, k: int = 16) -> None:
    g = repro.chung_lu_graph(n, exponent=2.1, avg_degree=12, seed=7)
    deg = g.degrees()
    print(
        f"synthetic web graph: n={g.n}, m={g.m}, max degree {deg.max()} "
        f"(mean {deg.mean():.1f}) — {int((deg > 10 * deg.mean()).sum())} hub pages"
    )

    eps = 0.15
    exact = repro.pagerank_walk_series(g, eps=eps)
    algo = repro.distributed_pagerank(g, k=k, eps=eps, seed=1, c=40)
    base = repro.baseline_pagerank(g, k=k, eps=eps, seed=1, c=40)
    no_heavy = repro.distributed_pagerank(
        g, k=k, eps=eps, seed=1, c=40, enable_heavy_path=False
    )

    print("\ncommunication profile (token phases):")
    rows = [
        ["Algorithm 1 (paper)", algo.token_rounds(), algo.metrics.messages, f"{algo.l1_error(exact):.4f}"],
        ["  ablation: no heavy path", no_heavy.token_rounds(), no_heavy.metrics.messages, f"{no_heavy.l1_error(exact):.4f}"],
        ["baseline Õ(n/k) [KNPR15]", base.token_rounds(), base.metrics.messages, f"{base.l1_error(exact):.4f}"],
    ]
    print(format_table(["algorithm", "rounds", "messages", "L1 err"], rows))

    print("\ntop-10 ranked pages (Algorithm 1 estimates vs exact):")
    top = np.argsort(exact)[::-1][:10]
    rows = [
        [f"page-{v}", int(deg[v]), f"{algo.estimates[v]:.5f}", f"{exact[v]:.5f}"]
        for v in top
    ]
    print(format_table(["page", "degree", "estimated", "exact"], rows))

    # Rank correlation on the head of the distribution.
    est_top = set(np.argsort(algo.estimates)[::-1][:20].tolist())
    ref_top = set(top.tolist())
    print(f"\ntop-10 pages recovered within estimated top-20: {len(est_top & ref_top)}/10")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:3]]
    main(*args)
