"""Corollary 1 end-to-end: triangle enumeration in the congested clique.

Runs the TriPartition-style algorithm with one vertex per machine on
``G(n, 1/2)`` inputs of growing size and prints measured rounds against
the paper's ``Θ̃(n^{1/3})`` law and the Corollary-1 lower bound — the
first super-constant unconditional lower bound known for the model.

Run:  python examples/congested_clique_demo.py
"""

from __future__ import annotations

import repro
from repro.core.lowerbounds.triangles import congested_clique_lower_bound
from repro.experiments.fits import fit_power_law
from repro.experiments.tables import format_table
from repro._util import polylog


def main() -> None:
    rows = []
    ns, rounds = [], []
    for n in (64, 125, 216):
        g = repro.gnp_random_graph(n, 0.5, seed=n)
        B = polylog(n, factor=1)
        res = repro.enumerate_triangles_congested_clique(g, seed=1, bandwidth=B)
        lb = congested_clique_lower_bound(n, B)
        rows.append(
            [n, f"{n ** (1/3):.2f}", res.count, res.rounds, f"{lb:.2f}", f"{res.rounds/lb:.1f}"]
        )
        ns.append(n)
        rounds.append(res.rounds)
    print("congested clique (k = n): triangle enumeration on G(n, 1/2)\n")
    print(
        format_table(
            ["n", "n^(1/3)", "triangles", "rounds", "Cor-1 bound", "ratio"], rows
        )
    )
    fit = fit_power_law(ns, rounds)
    print(
        f"\nmeasured rounds ~ n^{fit.exponent:.2f}"
        f"   (paper: Θ̃(n^(1/3)), tight by Corollary 1 + Dolev et al.)"
    )


if __name__ == "__main__":
    main()
