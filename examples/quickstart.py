"""Quickstart: the k-machine model in five minutes.

Builds a random graph, partitions it across k simulated machines via the
random vertex partition, runs the paper's two headline algorithms
(PageRank / Algorithm 1 and triangle enumeration / Theorem 5), and prints
measured round counts next to the matching lower bounds.

The architecture is layered: the *engine layer* picks how a superstep
executes (``engine="message"``, ``"vector"``, or ``"process"`` for
multiprocessing shard workers over a shared-memory graph store — with
*warm worker pools* reused across runs), the *runtime layer* shares
per-machine graph shards (:class:`repro.DistributedGraph`) and owns run
plumbing, and the *algorithm registry* (``repro.runtime``) makes every
family reachable through one ``run(name, data, k, ...)`` call.  The
*workload subsystem* (``repro.workloads``) names datasets by spec string
(``"rmat:n=1e6,avg_deg=16,seed=7"``) and caches built CSR graphs on disk
by content hash — the tour at the end generates, caches, runs, and
reruns one.  The *serve layer* (``repro.serve``) keeps all of that
resident in a long-lived daemon with a sqlite result cache, so repeated
requests are answered with zero superstep execution — the final tour
starts one in-process and round-trips it over HTTP.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import re

import repro


def main() -> None:
    n, k, seed = 1000, 8, 42
    g = repro.gnp_random_graph(n, 8.0 / n, seed=seed)
    print(f"input graph: n={g.n} vertices, m={g.m} edges, k={k} machines")

    # --- PageRank (Theorem 4: Õ(n/k²) rounds) --------------------------
    result = repro.distributed_pagerank(g, k=k, seed=seed, c=40)
    reference = repro.pagerank_walk_series(g, eps=result.eps)
    print("\nPageRank (Algorithm 1)")
    print(f"  rounds: {result.rounds}  (token phases only: {result.token_rounds()})")
    print(f"  messages: {result.metrics.messages}, bits: {result.metrics.bits}")
    print(f"  L1 error vs exact walk-series reference: {result.l1_error(reference):.4f}")
    lb = repro.pagerank_round_lower_bound(n, k, result.metrics.bandwidth)
    print(f"  Theorem-2 lower bound: {lb:.1f} rounds  (measured/bound = {result.rounds/lb:.1f}x)")

    top = reference.argsort()[::-1][:3]
    print("  top-3 vertices by PageRank:", ", ".join(
        f"v{v} ({result.estimates[v]:.5f} est / {reference[v]:.5f} exact)" for v in top
    ))

    # --- Triangle enumeration (Theorem 5: Õ(m/k^{5/3} + n/k^{4/3})) ----
    tri = repro.enumerate_triangles_distributed(g, k=k, seed=seed)
    print("\nTriangle enumeration (Theorem 5)")
    print(f"  triangles found: {tri.count} (exact: {repro.count_triangles(g)})")
    print(f"  rounds: {tri.rounds}, messages: {tri.metrics.messages}")
    lb3 = repro.triangle_round_lower_bound(n, k, tri.metrics.bandwidth, t=max(1, tri.count))
    print(f"  Theorem-3 lower bound at measured t: {lb3:.2f} rounds")

    # --- Distributed sorting (§1.3 extension: Θ̃(n/k²)) -----------------
    import numpy as np

    values = np.random.default_rng(seed).random(20_000)
    sorted_result = repro.distributed_sort(values, k=k, seed=seed)
    ok = bool(np.all(np.diff(sorted_result.concatenated()) >= 0))
    print("\nDistributed sorting (sample sort)")
    print(f"  n={values.size}, rounds: {sorted_result.rounds}, globally sorted: {ok}")
    lbs = repro.sorting_round_lower_bound(values.size, k, sorted_result.metrics.bandwidth)
    print(f"  §1.3 lower bound: {lbs:.1f} rounds")

    # --- Execution engines ---------------------------------------------
    # Every driver takes engine="message" (per-object simulation) or
    # engine="vector" (columnar NumPy batches).  Results and round
    # accounting are identical; the vector backend is much faster once
    # per-phase traffic is large.  On the CLI:
    #   python -m repro pagerank --engine vector
    import time

    big = repro.random_regularish_graph(30_000, 8, seed=seed)
    timings, rounds = {}, {}
    for engine in ("message", "vector"):
        start = time.perf_counter()
        run = repro.distributed_pagerank(
            big, k=16, seed=seed, c=0.5, max_iterations=2, engine=engine
        )
        timings[engine] = time.perf_counter() - start
        rounds[engine] = run.rounds
    assert rounds["message"] == rounds["vector"]  # backend never changes counts
    print(f"\nExecution engines on n={big.n} (identical rounds/messages/bits)")
    print(
        f"  message: {timings['message']:.3f}s   vector: {timings['vector']:.3f}s"
        f"   speedup: {timings['message'] / timings['vector']:.1f}x"
    )

    # --- Parallel shard workers (engine="process") ----------------------
    # The third backend keeps the vectorized exchange layer but runs each
    # machine's per-superstep compute in a pool of worker processes: the
    # graph shards are published once into a shared-memory store and the
    # workers hold the per-machine RNG streams, so results stay
    # bit-identical while heavy per-shard compute uses every core.  The
    # heavy-token regime (c >= k / log n) is where it shines — the
    # per-machine sampling loops dominate wall-clock there.
    import os

    workers = min(4, os.cpu_count() or 1)
    ptimings = {}
    for engine, kwargs in (("vector", {}), ("process", {"workers": workers})):
        start = time.perf_counter()
        run = repro.runtime.run(
            "pagerank", big, 8, seed=seed, c=2, max_iterations=2,
            engine=engine, **kwargs,
        )
        ptimings[engine] = time.perf_counter() - start
        rounds[engine] = run.rounds
    assert rounds["vector"] == rounds["process"]  # still bit-identical
    print(f"\nProcess engine on n={big.n}, heavy-token regime, {workers} workers")
    print(
        f"  vector: {ptimings['vector']:.3f}s   process: {ptimings['process']:.3f}s"
        f"   speedup: {ptimings['vector'] / ptimings['process']:.2f}x"
        f" (needs multiple CPUs; this host has {os.cpu_count()})"
    )

    # --- Warm worker pools ----------------------------------------------
    # Worker pools outlive the run that spawned them: runtime.run()
    # releases its pool *warm* on completion, and the next process-engine
    # run with the same worker count reuses the same worker processes
    # (and any still-published shared-memory graph stores) — no respawn,
    # no re-publication.  Explicit teardown: repro.shutdown_worker_pools();
    # REPRO_WARM_POOL=0 restores run-scoped pools (skipping this demo).
    from repro.kmachine import active_pools
    from repro.kmachine.parallel import warm_pools_enabled

    if warm_pools_enabled():
        repro.shutdown_worker_pools()
        start = time.perf_counter()
        repro.runtime.run(
            "triangles", g, k, seed=seed, engine="process", workers=workers
        )
        cold = time.perf_counter() - start
        (pool,) = active_pools()
        pids = pool.pids
        start = time.perf_counter()
        repro.runtime.run(
            "triangles", g, k, seed=seed, engine="process", workers=workers
        )
        warm = time.perf_counter() - start
        assert active_pools() == (pool,) and pool.pids == pids  # same processes
        print(f"\nWarm worker pools ({workers} workers, pids {list(pids)})")
        print(
            f"  first run (spawns pool): {cold:.3f}s   "
            f"second run (reuses pool): {warm:.3f}s"
        )
        repro.shutdown_worker_pools()

    # --- Resident supersteps (engine="process") -------------------------
    # By default the process engine runs drivers on the *resident* path
    # (REPRO_RESIDENT=0 restores the legacy one): per-machine driver
    # state is installed into the owning workers once
    # (cluster.install_resident), each superstep ships only deltas, and
    # kernels assemble their outbox fragments worker-side
    # (map_machines(..., assemble=...)) so one aggregate per worker
    # crosses the pipe instead of k per-machine results.  Results stay
    # bit-identical; a traced run shows the shipping cost move out of
    # ship_s into the new assemble_s sub-span.
    from repro.obs import Tracer as _Tracer
    from repro.obs import read_trace as _read_trace  # noqa: F401 (CLI parity)

    def _map_segments(tracer):
        maps = [e for e in tracer.events
                if e.get("event") == "phase" and e.get("op") == "map_machines"]
        totals: dict[str, float] = {}
        for e in maps:
            for name, s in (e.get("segments") or {}).items():
                totals[name] = totals.get(name, 0.0) + s
        return totals

    runs = {}
    for label, resident in (("legacy", False), ("resident", True)):
        tracer = _Tracer()
        runs[label] = repro.runtime.run(
            "pagerank", big, 8, seed=seed, c=2, max_iterations=2,
            engine="process", workers=workers, resident=resident,
            trace=tracer,
        )
        runs[label + "_seg"] = _map_segments(tracer)
    assert (runs["legacy"].result.estimates
            == runs["resident"].result.estimates).all()
    print("\nResident supersteps (worker-resident state + outbox assembly)")
    for label in ("legacy", "resident"):
        seg = runs[label + "_seg"]
        spans = "  ".join(f"{k2}={v:.3f}s" for k2, v in sorted(seg.items()))
        print(f"  {label:>8}: {spans}")
    repro.shutdown_worker_pools()

    # --- The runtime registry -------------------------------------------
    # Every family is registered with a spec (driver, defaults, theorem
    # bounds); runtime.run() owns cluster construction, partition
    # sampling, and shard materialization.  Seeded registry runs are
    # bit-identical to the direct calls above.  On the CLI:
    #   python -m repro run triangles --n 200 --k 27
    from repro import runtime

    print(f"\nRegistered algorithms: {', '.join(runtime.available())}")
    report = runtime.run("pagerank", g, k, seed=seed, engine="vector", c=40)
    assert report.rounds == result.rounds  # same run, same accounting
    spec = report.spec
    print(f"  runtime.run('pagerank', ...): {report.rounds} rounds "
          f"({spec.bounds}; lower bound {report.lower_bound():.1f})")

    # --- Workload tour: generate -> cache -> run -> rerun hits cache ----
    # Datasets are named by *spec strings* ("family:key=value,..."): the
    # workload subsystem parses and normalizes them (n=1e5, n=100_000 and
    # n=100000 are the same dataset), builds them through vectorized
    # samplers that never touch an edge in Python (an n=1e6 R-MAT builds
    # in seconds), and persists the CSR in a content-addressed on-disk
    # cache ($REPRO_DATA_DIR or ~/.cache/repro) — so the second
    # materialization is a snapshot load, and a rerun of the same
    # runtime.run() reuses the materialized shards too.  On the CLI:
    #   python -m repro data build "rmat:n=1e6,avg_deg=16,seed=7"
    #   python -m repro data ls
    #   python -m repro run triangles --dataset "rmat:n=1e6,avg_deg=16,seed=7"
    from repro import workloads

    dataset = "rmat:n=50000,avg_deg=12,seed=7"
    parsed = workloads.parse_spec(dataset)
    start = time.perf_counter()
    wg = workloads.materialize(dataset)
    cold = time.perf_counter() - start
    start = time.perf_counter()
    wg2 = workloads.materialize("rmat:n=5e4,seed=7,avg_deg=12.0")  # same dataset
    warm = time.perf_counter() - start
    assert (wg2.edges == wg.edges).all() and wg2.content_key == parsed.content_hash()
    print(f"\nWorkload subsystem ({', '.join(workloads.available_workloads())})")
    print(f"  {parsed.canonical()}")
    print(f"  hash {parsed.content_hash()}: n={wg.n}, m={wg.m}")
    print(f"  cold build+store: {cold:.3f}s   cached reload: {warm:.3f}s")
    wrep = runtime.run("triangles", dataset=dataset, k=16, seed=seed, engine="vector")
    wrep2 = runtime.run("triangles", dataset=dataset, k=16, seed=seed, engine="vector")
    assert wrep.result.count == wrep2.result.count
    assert wrep.distgraph is wrep2.distgraph  # shards shared via content key
    print(f"  triangles on the dataset: {wrep.result.count} "
          f"({wrep.rounds} rounds; rerun reused cached shards)")

    # --- Cold-start tour: shard snapshots + parallel generation ---------
    # A fresh process on a cached dataset still pays partition + shard
    # materialization before its first superstep.  PR 7 removes that tax:
    # the materialized DistributedGraph shards persist as mmap-friendly
    # sidecars next to the CSR blob, so the next cold start maps them
    # back read-only instead of rebuilding ($REPRO_SHARD_SNAPSHOTS=0
    # disables).  RunReport.first_superstep_seconds is the cold-start
    # clock: process entry to the first superstep's first activity.
    # Generators shard across the worker pool too — bit-identical to
    # serial — via `repro data build --jobs N` or $REPRO_BUILD_JOBS.
    from repro.kmachine.distgraph import clear_distgraph_cache

    pg = workloads.materialize(dataset, jobs=2)  # parallel == serial bits
    assert (pg.edges == wg.edges).all()
    clear_distgraph_cache()  # simulate a fresh process (no resident shards)
    cold_run = runtime.run("pagerank", dataset=dataset, k=8, seed=seed,
                           engine="vector", max_iterations=2, c=0.5)
    clear_distgraph_cache()
    warm_run = runtime.run("pagerank", dataset=dataset, k=8, seed=seed,
                           engine="vector", max_iterations=2, c=0.5)
    assert (warm_run.result.estimates == cold_run.result.estimates).all()
    print("\nCold start (shard snapshots; python -m repro serve --prewarm)")
    print(f"  first superstep after shard build: "
          f"{cold_run.first_superstep_seconds:.3f}s   "
          f"after mmap'd snapshot: {warm_run.first_superstep_seconds:.3f}s")
    workloads.default_cache().evict(dataset)  # leave no quickstart residue

    # --- Serve tour: a persistent analytics daemon + result cache -------
    # Deterministic engines make completed runs data: runtime.run(...,
    # result_cache=True) persists (result, metrics) in sqlite keyed by
    # (dataset content_key, algo, canonical params, seed, engine), and a
    # repeat of the same request is answered with zero superstep
    # execution.  The serve daemon keeps the whole substrate — warm
    # pools, materialized datasets, the result cache — resident behind
    # an HTTP/JSON front end, multiplexing concurrent clients through
    # one Session (misses serialize over the substrate lock; cache hits
    # answer concurrently without it).  On the CLI:
    #   python -m repro serve --port 8642 &
    #   python -m repro client run triangles --dataset "rmat:n=1e6,avg_deg=16,seed=7" --k 8 --seed 9
    #   python -m repro client status && python -m repro client shutdown
    import tempfile

    from repro.serve import ReproServer, ServeClient

    serve_dataset = "gnp:n=2000,avg_deg=6,seed=7"
    with tempfile.NamedTemporaryFile(suffix=".sqlite") as tmp_db:
        server = ReproServer(port=0, result_cache=tmp_db.name)
        with server.start_in_thread() as handle:
            client = ServeClient(handle.host, handle.port)
            client.wait_until_ready()
            start = time.perf_counter()
            first = client.run("triangles", dataset=serve_dataset, k=8, seed=9)
            miss_s = time.perf_counter() - start
            start = time.perf_counter()
            second = client.run("triangles", dataset=serve_dataset, k=8, seed=9)
            hit_s = time.perf_counter() - start
            assert not first["cached"] and second["cached"]
            assert second["rounds"] == first["rounds"]
            stats = client.status()["session"]
            # Daemon telemetry rides along: every component registers its
            # stats into one obs registry, GET /metrics renders them as
            # Prometheus text, and /status?history=1 returns the
            # per-minute request/latency ring.
            import urllib.request

            with urllib.request.urlopen(
                f"http://{handle.host}:{handle.port}/metrics"
            ) as reply:
                metrics_text = reply.read().decode()
            # The registry suffixes name collisions (session-2, ...), so
            # match any session source rather than pinning the bare name.
            assert re.search(
                r"^repro_session(_\d+)?_executed 1$", metrics_text, re.M
            ), metrics_text
        print(f"\nServe daemon on 127.0.0.1:{handle.port} ({serve_dataset})")
        print(f"  first request (executes): {miss_s:.3f}s   "
              f"identical repeat (sqlite hit): {hit_s:.3f}s")
        print(f"  session counters: executed={stats['executed']} "
              f"cache_hits={stats['cache_hits']} "
              f"store={stats['result_store']['entries']} entries")
        print(f"  GET /metrics: {len(metrics_text.splitlines())} Prometheus "
              f"samples (plus /status?history=1 per-minute telemetry)")
    workloads.default_cache().evict(serve_dataset)

    # --- Observability tour: tracing + bound checking -------------------
    # Pass trace= to any run (CLI: --trace out.jsonl, env: $REPRO_TRACE)
    # and the engines stamp every phase with its wall-clock and
    # sub-spans; untraced runs pay a single branch per phase.  Every run
    # also carries a BoundReport comparing measured rounds against the
    # family theorem's Õ envelope (polynomial x polylog slack) and the
    # General Lower Bound Theorem's floor.  On the CLI:
    #   python -m repro run pagerank --n 2000 --k 8 --trace out.jsonl
    #   python -m repro trace summarize out.jsonl
    from repro.obs import Tracer, summarize_trace

    tracer = Tracer()  # in-memory; pass a path to stream JSONL instead
    traced = runtime.run("pagerank", g, k, seed=seed, engine="vector",
                         c=40, trace=tracer)
    assert traced.rounds == result.rounds  # tracing never changes a run
    summary = summarize_trace(tracer.events)
    heaviest = summary["groups"][0]
    bound = traced.bound_report
    print("\nObservability (repro.obs)")
    print(f"  traced {sum(grp['count'] for grp in summary['groups'])} phase "
          f"events covering {summary['coverage']:.0%} of the run window")
    print(f"  heaviest phase group: {heaviest['op']}/{heaviest['label']} "
          f"({heaviest['wall_s']:.3f}s)")
    print(f"  bound check: {bound.measured_rounds} rounds "
          f"{'within' if bound.within_envelope else 'EXCEEDS'} the "
          f"Õ({bound.upper_bound_rounds:.0f}) envelope, ok={bound.ok}")

    # --- Communication ledger -------------------------------------------
    # The BoundReport checks the end-of-run total; the LedgerReport on
    # the same RunReport closes the loop phase by phase: every recorded
    # phase gets a row of measured bits/rounds with running totals,
    # checked against the budget the family's declared Õ bound implies
    # (round_budget = core x polylog(n) x slack, bits_budget = rounds x
    # bandwidth) — the first phase to blow the envelope is flagged, not
    # just the sum.  `repro run` prints these rows; the serve daemon
    # returns them in every /run reply.
    ledger = traced.ledger_report
    assert ledger.ok and not ledger.violations
    heaviest_phase = ledger.heaviest_entry
    print(f"  ledger: {len(ledger.entries)} phases, "
          f"{ledger.total_rounds} rounds of budget "
          f"{ledger.round_budget:.0f} — ok={ledger.ok}")
    print(f"  heaviest phase: #{heaviest_phase.index} "
          f"'{heaviest_phase.label}' ({heaviest_phase.max_link_bits} bits "
          f"on its heaviest link)")

    # --- Trace export: open a run in a timeline viewer ------------------
    # A JSONL trace converts to the Chrome trace-event format (open in
    # chrome://tracing or https://ui.perfetto.dev) or a speedscope
    # profile (https://www.speedscope.app): one named track per run,
    # phase slices with driver gaps, segment sub-spans as children.
    # On the CLI:
    #   python -m repro trace export out.jsonl --format chrome
    from repro.obs import export_trace, validate_chrome_trace

    chrome_doc = export_trace(tracer.events, "chrome")
    validate_chrome_trace(chrome_doc)  # what the CI export smoke runs
    speedscope_doc = export_trace(tracer.events, "speedscope")
    print(f"  export: {len(chrome_doc['traceEvents'])} Chrome trace "
          f"events / {len(speedscope_doc['profiles'])} speedscope "
          f"profile(s) from the same JSONL")

    # --- Alerts round-trip: inject failures, watch a rule fire ----------
    # The daemon evaluates declarative alert rules (dotted metric path,
    # threshold, sustain window) against its live telemetry in a
    # background loop — configured via --alert-rules rules.json or
    # $REPRO_ALERT_RULES; without rules the request path is untouched.
    # Here: an error-rate rule, a storm of bad requests to fire it, then
    # good traffic to resolve it, all visible through GET /alerts.
    from repro.obs import AlertRule

    alert_events: list[dict] = []
    rule = AlertRule(name="error-rate", metric="serve.error_rate",
                     op=">", threshold=0.5, severity="critical")
    with tempfile.NamedTemporaryFile(suffix=".sqlite") as tmp_db:
        server = ReproServer(port=0, result_cache=tmp_db.name,
                             alert_rules=[rule], alert_interval=0.05,
                             alert_sinks=(alert_events.append,))
        with server.start_in_thread() as handle:
            client = ServeClient(handle.host, handle.port)
            client.wait_until_ready()
            for _ in range(4):  # the storm: unknown algos are 400s
                try:
                    client.run("no-such-algo", dataset=serve_dataset, k=8)
                except Exception:
                    pass
            deadline = time.monotonic() + 15
            while (client.alerts()["active"] != ["error-rate"]
                   and time.monotonic() < deadline):
                time.sleep(0.05)
            fired = client.alerts()
            for _ in range(5):  # recovery: good (soon cached) runs
                client.run("triangles", dataset=serve_dataset, k=8, seed=9)
            while (client.alerts()["active"]
                   and time.monotonic() < deadline):
                time.sleep(0.05)
            resolved = client.alerts()
    assert fired["active"] == ["error-rate"]
    assert resolved["active"] == [] and resolved["resolved"] == ["error-rate"]
    print("\nAlert rules (GET /alerts; repro serve --alert-rules)")
    print(f"  rule '{rule.name}' ({rule.metric} {rule.op} {rule.threshold}) "
          f"fired under the failure storm, resolved after recovery")
    print("  sink saw: " + ", ".join(
        f"{e['event']}@{e['value']:.2f}" for e in alert_events))
    workloads.default_cache().evict(serve_dataset)


if __name__ == "__main__":
    main()
